r"""PSNE-style push-based PPR proximity sparsification.

Instead of drawing ``M`` PathSampling walks, this backend *computes* the
walk mass each draw would estimate.  Recall (see
:mod:`repro.sparsifier.builder`) that with ``P = D⁻¹A`` the ``r``-step walk
matrix is ``A_r = D·Pʳ`` and a PathSampling aggregate satisfies

    E[W(x, y)] = (M / vol(G)) · d_x · S(x, y),    S = (1/T) Σ_{r=1}^T Pʳ.

The PPR backend evaluates ``S̃ ≈ S`` row-by-row with a batched sparse
frontier iteration — the vectorized analog of PSNE's forward push.  Each
source ``x`` carries a *per-source sample budget*

    M_x = M · d_x / vol(G)

(the degree-weighted seeding: a uniform-edge walk visits ``x`` with
stationary frequency ``d_x / vol``), and frontier entries whose final
contribution to the expected count ``M_x · S̃(x, y)`` would fall below the
``resolution`` threshold are pruned — the per-source residual thresholding
that keeps the frontier sparse and the output nnz proportional to ``M``.

The emitted integer-ish counts ``t(x, y) = M_x · S̃(x, y)`` are randomized-
rounded below one expected draw (kept with probability ``t`` at weight 1,
kept deterministically at weight ``t`` otherwise), so the aggregate is an
unbiased estimate of the *same* ``W`` the PathSampling backend produces and
feeds the unchanged estimator
:func:`repro.sparsifier.builder.sparsifier_to_netmf_matrix` with
``num_draws = M``.

Determinism contract: sources are processed in fixed-size batches whose
decomposition depends only on ``batch_size``; the rounding coins of batch
``i`` come from the ``i``-th RNG stream of
:func:`repro.utils.rng.spawn_batch_rngs`.  The result is therefore
bit-identical at every worker count on both the thread and the process
execution substrates.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro import telemetry
from repro.errors import SamplingError
from repro.graph.compression import CompressedGraph
from repro.graph.csr import CSRGraph
from repro.sparsifier.path_sampling import PathSamplingConfig
from repro.utils.parallel import default_workers, parallel_map, resolve_backend
from repro.utils.rng import SeedLike, ensure_rng, spawn_batch_rngs

GraphLike = Union[CSRGraph, CompressedGraph]

# Sources per slab are capped so one frontier block stays cache-friendly even
# with the default (walk-oriented) 2M batch_size.
_MAX_SOURCE_BATCH = 16_384

# Per-process PPR context, installed once per worker by the pool initializer
# (mirrors ``_SAMPLE_CTX`` in path_sampling): the walk operator plus scalar
# config, so each task pickles only its source ids and its RNG stream.
_PPR_CTX: Dict[str, object] = {}


def walk_operator(graph: GraphLike) -> Tuple[sp.csr_matrix, np.ndarray, float]:
    """``(P, degrees, vol)`` — the row-stochastic transition matrix ``D⁻¹A``.

    Rows of isolated vertices are zero (their walk mass dies, matching the
    PathSampling process which can never seed there).  Pure deterministic
    function of the graph, so parent and pool workers agree bit for bit.
    """
    flat = graph.decompress() if isinstance(graph, CompressedGraph) else graph
    degrees = flat.weighted_degrees().astype(np.float64)
    adjacency = flat.adjacency(dtype=np.float64)
    inv = np.where(degrees > 0, 1.0 / np.maximum(degrees, 1e-300), 0.0)
    operator = (sp.diags(inv) @ adjacency).tocsr()
    return operator, degrees, float(flat.volume)


def _prune_rows(matrix: sp.csr_matrix, floors: np.ndarray) -> sp.csr_matrix:
    """Drop entries of row ``i`` below ``floors[i]`` (residual thresholding)."""
    counts = np.diff(matrix.indptr)
    keep = matrix.data >= np.repeat(floors, counts)
    if keep.all():
        return matrix
    rows = np.repeat(np.arange(matrix.shape[0]), counts)[keep]
    return sp.csr_matrix(
        (matrix.data[keep], (rows, matrix.indices[keep])), shape=matrix.shape
    )


def ppr_batch_counts(
    operator: sp.csr_matrix,
    degrees: np.ndarray,
    volume: float,
    sources: np.ndarray,
    *,
    window: int,
    num_samples: int,
    resolution: float,
    rng: np.random.Generator,
    stats: Optional[Dict[str, float]] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Expected-count triples ``(rows, cols, weights)`` for one source slab.

    Runs ``window`` frontier pushes from the given sources, prunes entries
    whose expected count ``M_x·S̃(x,y)`` would land below ``resolution``, and
    randomized-rounds sub-unit counts with ``rng`` (one coin array per slab —
    the batch's RNG stream).
    """
    batch = sources.size
    n = operator.shape[0]
    budgets = num_samples * degrees[sources] / volume
    # Frontier entries contribute M_x·p/T to the final count: prune at the
    # walk-probability level that maps to ``resolution`` expected samples.
    floors = np.where(
        budgets > 0, resolution * window / np.maximum(budgets, 1e-300), np.inf
    )
    frontier = sp.csr_matrix(
        (np.ones(batch), (np.arange(batch), sources)), shape=(batch, n)
    )
    accumulator = None
    pushes = 0
    for _ in range(window):
        frontier = (frontier @ operator).tocsr()
        pushes += int(frontier.nnz)
        frontier = _prune_rows(frontier, floors)
        accumulator = frontier if accumulator is None else accumulator + frontier
        if frontier.nnz == 0:
            break
    if stats is not None:
        stats["pushes"] = stats.get("pushes", 0.0) + pushes
    # t(x, y) = M_x · S̃(x, y) with S̃ = accumulated frontier mass / T.
    expected = (sp.diags(budgets / window) @ accumulator.tocsr()).tocoo()
    values = expected.data
    # Unbiased rounding: keep sub-unit counts with probability t at weight 1,
    # keep t >= 1 deterministically at weight t (rng.random() < 1 always).
    keep = rng.random(values.size) < np.minimum(values, 1.0)
    rows = sources[expected.row[keep]].astype(np.int64)
    cols = expected.col[keep].astype(np.int64)
    weights = np.maximum(values[keep], 1.0)
    return rows, cols, weights


def _ppr_worker_init(
    graph_spec: tuple, window: int, num_samples: int, resolution: float
) -> None:
    """Rebuild the PPR context inside a pool worker process.

    ``graph_spec`` follows the sampling convention: ``("mmap", path)``
    reopens the CSR v2 container memmapped, ``("pickle", graph)`` receives
    one pickled copy.  The walk operator is recomputed here — it is a pure
    function of the graph, so it matches the parent bit for bit.
    """
    if graph_spec[0] == "mmap":
        from repro.graph.io import load_csr

        graph = load_csr(graph_spec[1])
    else:
        graph = graph_spec[1]
    operator, degrees, volume = walk_operator(graph)
    _PPR_CTX.update(
        operator=operator, degrees=degrees, volume=volume,
        window=window, num_samples=num_samples, resolution=resolution,
    )


def _ppr_chunk_proc(
    index: int, sources: np.ndarray, chunk_rng: np.random.Generator
):
    """Process-pool PPR task — the module-level twin of the thread closure.

    Instrumentation mirrors the thread path and records into the worker's
    spooled tracer/registry (merged by the parent at pool shutdown), so
    ``sparsifier.ppr.batch`` spans land on the worker-pid trace lanes.
    """
    with telemetry.span(
        "sparsifier.ppr.batch", batch=index, size=int(sources.size)
    ) as span:
        triple = ppr_batch_counts(
            _PPR_CTX["operator"], _PPR_CTX["degrees"], _PPR_CTX["volume"],
            sources, window=_PPR_CTX["window"],
            num_samples=_PPR_CTX["num_samples"],
            resolution=_PPR_CTX["resolution"], rng=chunk_rng,
        )
    elapsed = getattr(span, "duration", None)
    if elapsed is not None:
        telemetry.histogram("sparsifier.ppr.batch_seconds").observe(elapsed)
        telemetry.counter("sparsifier.ppr.batches").inc()
        telemetry.counter("sparsifier.ppr.entries").inc(triple[0].size)
    return triple


def sample_ppr_counts(
    graph: GraphLike,
    config: PathSamplingConfig,
    seed: SeedLike = None,
    *,
    batch_size: int = 2_000_000,
    workers: Optional[int] = 1,
    backend: Optional[str] = None,
    stats: Optional[Dict[str, float]] = None,
    resolution: float = 0.25,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Run the push-based PPR estimator end to end.

    Returns ``(rows, cols, weights, draws)`` with the same contract as
    :func:`repro.sparsifier.path_sampling.sample_sparsifier_edges`:
    aggregated, the triples estimate the count matrix ``W`` with
    ``E[W(x,y)] = (M/vol)·d_x·S(x,y)``, and ``draws`` is the nominal sample
    budget ``M`` the downstream estimator divides by.

    ``config`` is the shared :class:`PathSamplingConfig` — ``window`` is the
    push depth ``T``, ``num_samples`` the budget ``M``; the downsampling
    knobs do not apply (the residual threshold plays their role and the
    budget already scales nnz).  Sources are processed in fixed slabs of
    ``min(batch_size, 16384)`` rows with per-batch RNG streams, so the output
    is bit-identical for every ``workers`` value on both the ``"thread"``
    and ``"process"`` substrates (the latter rebuilds the walk operator per
    worker via a pool initializer, memmapping CSR v2 graphs when available).

    ``resolution`` is the residual threshold in units of expected samples:
    entries whose expected count would fall below it are pruned during the
    push (biasing the estimate low the same way dropped walk samples do).
    """
    rng = ensure_rng(seed)
    backend = resolve_backend(backend)
    if workers is None:
        workers = default_workers()
    if batch_size < 1:
        raise SamplingError(f"batch_size must be >= 1, got {batch_size}")
    if resolution <= 0:
        raise SamplingError(f"resolution must be > 0, got {resolution}")
    flat = graph.decompress() if isinstance(graph, CompressedGraph) else graph
    if flat.num_edges == 0:
        raise SamplingError("cannot sparsify an empty graph")
    if config.num_samples <= 0:
        raise SamplingError("config.num_samples must be set (> 0)")

    n = flat.num_vertices
    source_batch = max(1, min(int(batch_size), _MAX_SOURCE_BATCH))
    starts = list(range(0, n, source_batch))
    if stats is not None:
        stats["draws"] = int(config.num_samples)
        stats["batches"] = len(starts)
        stats["batch_size"] = int(source_batch)
        stats["workers"] = int(workers)
        stats["backend"] = backend
        stats["resolution"] = float(resolution)

    operator, degrees, volume = walk_operator(flat)
    all_sources = np.arange(n, dtype=np.int64)
    batch_rngs = spawn_batch_rngs(rng, len(starts))
    args = [
        (index, all_sources[start : start + source_batch], batch_rng)
        for index, (start, batch_rng) in enumerate(zip(starts, batch_rngs))
    ]
    # Batch spans run on pool threads with no current-span stack — capture
    # the parent here (the sparsifier stage span when tracing is on).
    parent_span = telemetry.current_span()

    def push_chunk(
        index: int, sources: np.ndarray, chunk_rng: np.random.Generator
    ):
        with telemetry.span(
            "sparsifier.ppr.batch", parent=parent_span,
            batch=index, size=int(sources.size),
        ) as span:
            triple = ppr_batch_counts(
                operator, degrees, volume, sources,
                window=config.window, num_samples=config.num_samples,
                resolution=resolution, rng=chunk_rng, stats=stats,
            )
        elapsed = getattr(span, "duration", None)
        if elapsed is not None:
            telemetry.histogram("sparsifier.ppr.batch_seconds").observe(elapsed)
            telemetry.counter("sparsifier.ppr.batches").inc()
            telemetry.counter("sparsifier.ppr.entries").inc(triple[0].size)
        return triple

    if backend == "process" and workers > 1:
        mmap_source = getattr(graph, "mmap_source", None)
        graph_spec = ("mmap", mmap_source) if mmap_source else ("pickle", graph)
        results = parallel_map(
            _ppr_chunk_proc,
            args,
            workers=workers,
            backend="process",
            initializer=_ppr_worker_init,
            initargs=(graph_spec, config.window, config.num_samples, resolution),
            label="sparsifier.ppr",
        )
    else:
        results = parallel_map(
            push_chunk, args, workers=workers, label="sparsifier.ppr"
        )
    rows = np.concatenate([r[0] for r in results])
    cols = np.concatenate([r[1] for r in results])
    weights = np.concatenate([r[2] for r in results])
    if stats is not None:
        stats["walk_samples"] = int(rows.size)
    telemetry.counter("sparsifier.draws").inc(int(config.num_samples))
    return rows, cols, weights, int(config.num_samples)
