"""Edge-sample aggregation strategies (paper Section 4.2).

The paper considered several ways to count how often each distinct edge is
sampled: per-processor lists merged by GBBS's sparse histogram (a semisort),
per-processor hash tables merged periodically, and a single shared sparse
parallel hash table — the last being fastest and most memory-efficient on
their hardware.  We implement analogs of every strategy so benchmark E12 can
compare them:

* :func:`aggregate_hash` — the shared :class:`SparseParallelHashTable`;
* :func:`aggregate_hash_sharded` — per-processor tables over a hash
  partition of the key space, built concurrently and merged at the end
  (the paper's second alternative);
* :func:`aggregate_sort` — semisort analog: ``np.unique`` on packed keys;
* :func:`aggregate_histogram` — per-processor lists + sparse histogram;
* :func:`aggregate_dict` — plain Python dict (reference implementation used
  by the tests as ground truth).

All return identical ``(rows, cols, values)`` triples up to ordering.  The
hash-based aggregators accept an optional ``stats`` dict that receives
``peak_table_bytes`` (the backing-array footprint the paper's §5.2.4 memory
model tracks) and ``distinct`` entries.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.sparsifier.hashtable import SparseParallelHashTable, hash_partition
from repro.telemetry.metrics import PROBE_BUCKETS
from repro.utils.parallel import default_workers, parallel_map, resolve_backend

Triple = Tuple[np.ndarray, np.ndarray, np.ndarray]


def _record_table_metrics(table: SparseParallelHashTable, kind: str) -> None:
    """Publish a table's probe/occupancy figures to the metrics registry.

    No-ops (cheap: one ``is_enabled`` check) when telemetry is disabled.
    ``kind`` distinguishes the shared table from shard/merge tables.
    """
    if not telemetry.is_enabled():
        return
    metrics = telemetry.get_metrics()
    if table.insert_calls:
        metrics.histogram("hashtable.probe_rounds", PROBE_BUCKETS).observe(
            table.total_probe_rounds / table.insert_calls
        )
    metrics.gauge(f"hashtable.{kind}.load_factor").set(table.load_factor)
    metrics.gauge(f"hashtable.{kind}.max_probe_rounds").set_max(
        table.max_probe_rounds
    )
    metrics.counter("hashtable.distinct_keys").inc(len(table))
    metrics.gauge("hashtable.table_bytes").set_max(table.size_in_bytes())


def _as_arrays(rows, cols, values) -> Triple:
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    if not (rows.shape == cols.shape == values.shape):
        raise ValueError("rows, cols and values must be parallel arrays")
    return rows, cols, values


def aggregate_hash(
    rows,
    cols,
    values,
    n: int,
    *,
    batch_size: int = 1_000_000,
    stats: Optional[Dict[str, float]] = None,
) -> Triple:
    """Aggregate with the shared sparse parallel hash table (paper's choice)."""
    rows, cols, values = _as_arrays(rows, cols, values)
    with telemetry.span("aggregate.hash", samples=int(rows.size)):
        table = SparseParallelHashTable(capacity_hint=max(1024, rows.size // 4))
        for start in range(0, rows.size, batch_size):
            stop = start + batch_size
            table.add_pairs(
                rows[start:stop], cols[start:stop], values[start:stop], n
            )
    _record_table_metrics(table, "shared")
    if stats is not None:
        stats["peak_table_bytes"] = table.size_in_bytes()
        stats["distinct"] = len(table)
        stats["probe_rounds"] = table.total_probe_rounds
    return table.to_pairs(n)


# Per-process context for the shared-memory sharded aggregation: the pool
# initializer attaches the parent's segment once per worker and exposes the
# packed key/value arrays as zero-copy views; tasks then read only their
# shard's contiguous slice.
_SHARD_SHM_CTX: Dict[str, object] = {}


def _shard_shm_attach(shm_name: str, total: int) -> None:
    """Pool initializer: map the parent's (keys, values) segment read-only."""
    shm = shared_memory.SharedMemory(name=shm_name)
    _SHARD_SHM_CTX["shm"] = shm
    _SHARD_SHM_CTX["keys"] = np.ndarray(total, dtype=np.int64, buffer=shm.buf)
    _SHARD_SHM_CTX["values"] = np.ndarray(
        total, dtype=np.float64, buffer=shm.buf, offset=8 * total
    )


def _shard_shm_detach() -> None:
    """Drop the context's views and close the mapping (parent-side cleanup;
    worker processes just exit)."""
    shm = _SHARD_SHM_CTX.pop("shm", None)
    _SHARD_SHM_CTX.clear()
    if shm is not None:
        try:
            shm.close()
        except BufferError:  # pragma: no cover - views still alive elsewhere
            pass


def _build_shard_shm(start: int, stop: int, batch_size: int):
    """Build one shard table from the shared segment's ``[start, stop)`` slice.

    The slice holds that shard's keys in original stream order (the parent
    stable-sorts by shard id), and batching mirrors the thread path, so the
    resulting table — and therefore its ``items()`` order — is bit-identical
    to the closure the thread backend runs.  Returns the compacted
    ``(keys, values)`` plus (table_bytes, distinct, probe_rounds) telemetry;
    shipping the compacted items instead of the table keeps the pickled
    result proportional to the distinct-edge count, not the sample count.
    """
    shard_keys = _SHARD_SHM_CTX["keys"][start:stop]
    shard_values = _SHARD_SHM_CTX["values"][start:stop]
    # Mirrors the thread path's instrumentation; with the worker telemetry
    # shim installed the span/metrics land in this worker's spool and merge
    # into the parent trace on the worker's pid lane.
    with telemetry.span(
        "aggregate.shard", start=int(start), stop=int(stop),
        size=int(shard_keys.size),
    ):
        table = SparseParallelHashTable(capacity_hint=max(64, shard_keys.size // 4))
        for batch_start in range(0, shard_keys.size, batch_size):
            batch_stop = batch_start + batch_size
            table.add_batch(
                shard_keys[batch_start:batch_stop],
                shard_values[batch_start:batch_stop],
            )
    _record_table_metrics(table, "shard")
    out_keys, out_values = table.items()
    return out_keys, out_values, (
        table.size_in_bytes(), len(table), table.total_probe_rounds
    )


def _sharded_process_items(
    keys: np.ndarray,
    values: np.ndarray,
    shard_of: np.ndarray,
    num_shards: int,
    workers: int,
    batch_size: int,
):
    """Run the shard builds on a process pool via one shared-memory segment.

    Returns per-shard ``(keys, values, stats)`` tuples in shard order.  The
    parent groups the stream by shard id with a *stable* sort, so each worker
    sees exactly the sequence the thread path's boolean-mask selection would
    produce — the determinism contract does not depend on the backend.
    """
    order = np.argsort(shard_of, kind="stable")
    counts = np.bincount(shard_of, minlength=num_shards)
    bounds = np.zeros(num_shards + 1, dtype=np.int64)
    np.cumsum(counts, out=bounds[1:])
    total = int(keys.size)
    shm = shared_memory.SharedMemory(create=True, size=16 * total)
    try:
        np.ndarray(total, dtype=np.int64, buffer=shm.buf)[:] = keys[order]
        np.ndarray(total, dtype=np.float64, buffer=shm.buf, offset=8 * total)[:] = (
            values[order]
        )
        args = [
            (int(bounds[shard]), int(bounds[shard + 1]), batch_size)
            for shard in range(num_shards)
        ]
        try:
            return parallel_map(
                _build_shard_shm,
                args,
                workers=workers,
                backend="process",
                initializer=_shard_shm_attach,
                initargs=(shm.name, total),
                label="sparsifier.aggregation",
            )
        finally:
            # The serial fallback runs the initializer in this process; the
            # pooled path leaves the parent context empty and this is a no-op.
            _shard_shm_detach()
    finally:
        shm.close()
        shm.unlink()


def aggregate_hash_sharded(
    rows,
    cols,
    values,
    n: int,
    *,
    num_shards: Optional[int] = None,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    batch_size: int = 1_000_000,
    stats: Optional[Dict[str, float]] = None,
) -> Triple:
    """Per-processor hash tables over a hash partition of the key space.

    The §4.2 alternative to the single shared table: the packed ``row*n+col``
    keys are partitioned by :func:`hash_partition` into ``num_shards``
    disjoint slices, each slice is accumulated into its own
    :class:`SparseParallelHashTable` (concurrently, on a thread pool, when
    ``workers > 1``), and the shard tables are merged into one result table
    via ``add_batch``.  Because shard membership is a pure function of the
    key, the aggregated key set always matches :func:`aggregate_hash`, and
    for a *fixed* ``num_shards`` the output is bit-identical for every
    ``workers`` value.  Varying ``num_shards`` can permute the output order
    and reassociate floating-point sums (values then agree only up to
    rounding).

    ``num_shards`` defaults to the resolved worker count; ``workers=None``
    resolves to :func:`repro.utils.parallel.default_workers`.

    ``backend="process"`` builds the shard tables in worker *processes*: the
    packed keys/values are published once through a
    ``multiprocessing.shared_memory`` segment (grouped by shard with a stable
    sort, so each worker reads one contiguous slice), and the compacted
    per-shard items come back for the same ``add_batch`` merge.  Because each
    shard table sees the identical key sequence and batch boundaries as the
    thread path, the output is bit-identical to ``backend="thread"`` at every
    worker count (for a fixed ``num_shards``).
    """
    rows, cols, values = _as_arrays(rows, cols, values)
    backend = resolve_backend(backend)
    if workers is None:
        workers = default_workers()
    if num_shards is None:
        num_shards = max(1, workers)
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if rows.size == 0:
        return rows, cols, values
    keys = rows * np.int64(n) + cols
    shard_of = hash_partition(keys, num_shards)
    if backend == "process" and workers > 1:
        shard_items = _sharded_process_items(
            keys, values, shard_of, num_shards, workers, batch_size
        )
    else:
        # Shard spans run on pool threads; parent them to the caller's span.
        parent_span = telemetry.current_span()

        def build_shard(
            shard: int, shard_keys: np.ndarray, shard_values: np.ndarray
        ):
            with telemetry.span(
                "aggregate.shard", parent=parent_span,
                shard=shard, keys=int(shard_keys.size),
            ):
                table = SparseParallelHashTable(
                    capacity_hint=max(64, shard_keys.size // 4)
                )
                for start in range(0, shard_keys.size, batch_size):
                    stop = start + batch_size
                    table.add_batch(
                        shard_keys[start:stop], shard_values[start:stop]
                    )
            _record_table_metrics(table, "shard")
            out_keys, out_values = table.items()
            return out_keys, out_values, (
                table.size_in_bytes(), len(table), table.total_probe_rounds
            )

        args = []
        for shard in range(num_shards):
            members = shard_of == shard
            args.append((shard, keys[members], values[members]))
        shard_items = parallel_map(
            build_shard, args, workers=workers, label="sparsifier.aggregation"
        )

    with telemetry.span("aggregate.merge", shards=num_shards):
        merged = SparseParallelHashTable(
            capacity_hint=max(1024, sum(item[2][1] for item in shard_items))
        )
        for shard_keys, shard_values, _ in shard_items:
            merged.add_batch(shard_keys, shard_values)
    _record_table_metrics(merged, "merged")
    if stats is not None:
        shard_bytes = sum(item[2][0] for item in shard_items)
        # Shard tables and the merged table coexist during the merge.
        stats["peak_table_bytes"] = shard_bytes + merged.size_in_bytes()
        stats["shard_table_bytes"] = shard_bytes
        stats["num_shards"] = num_shards
        stats["distinct"] = len(merged)
        stats["probe_rounds"] = merged.total_probe_rounds + sum(
            item[2][2] for item in shard_items
        )
    return merged.to_pairs(n)


def aggregate_sort(rows, cols, values, n: int) -> Triple:
    """Semisort-analog aggregation: sort packed keys, reduce runs."""
    rows, cols, values = _as_arrays(rows, cols, values)
    if rows.size == 0:
        return rows, cols, values
    keys = rows * np.int64(n) + cols
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    sums = np.zeros(unique_keys.size)
    np.add.at(sums, inverse, values)
    return unique_keys // n, unique_keys % n, sums


def aggregate_histogram(
    rows, cols, values, n: int, *, num_partitions: int = 8
) -> Triple:
    """Per-processor lists merged by a sparse histogram (GBBS alternative #1).

    Simulates the first strategy §4.2 considered: each "processor" buffers
    its own list of samples; the merge phase builds a histogram over the
    union.  We partition the stream round-robin (as a work-stealing scheduler
    would), locally sort-reduce each partition, then merge the partial
    histograms.  Results match the other aggregators exactly.
    """
    rows, cols, values = _as_arrays(rows, cols, values)
    if num_partitions < 1:
        raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
    if rows.size == 0:
        return rows, cols, values
    partials = []
    for start in range(num_partitions):
        sl = slice(start, None, num_partitions)
        if rows[sl].size:
            partials.append(aggregate_sort(rows[sl], cols[sl], values[sl], n))
    merged_rows = np.concatenate([p[0] for p in partials])
    merged_cols = np.concatenate([p[1] for p in partials])
    merged_vals = np.concatenate([p[2] for p in partials])
    return aggregate_sort(merged_rows, merged_cols, merged_vals, n)


def aggregate_dict(rows, cols, values, n: int) -> Triple:
    """Reference dict-of-floats aggregation (slow, obviously correct)."""
    rows, cols, values = _as_arrays(rows, cols, values)
    table: Dict[int, float] = {}
    for r, c, v in zip(rows.tolist(), cols.tolist(), values.tolist()):
        key = r * n + c
        table[key] = table.get(key, 0.0) + v
    if not table:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), np.empty(0)
    keys = np.fromiter(table.keys(), dtype=np.int64, count=len(table))
    sums = np.fromiter(table.values(), dtype=np.float64, count=len(table))
    return keys // n, keys % n, sums
