r"""From edge samples to the sparsified NetMF matrix (paper Eq. 1).

Estimator derivation
--------------------
Let ``A_r = A (D⁻¹A)^{r-1}`` (so ``D⁻¹ A_r D⁻¹ = (D⁻¹A)^r D⁻¹``).  For an
unweighted graph, a PathSampling draw seeded at a uniformly random oriented
edge with a uniform split position outputs the ordered pair ``(x, y)`` of a
length-``r`` path ``v_0 … v_r`` with probability

    P(path) = (1/vol(G)) · Π_{j=1}^{r-1} 1/d(v_j)

(the ``1/r`` split factor cancels against the ``r`` valid seed positions).
Summing over paths gives ``P(x, y) = A_r(x, y) / vol(G)`` — exactly the mass
of the ``r``-step walk matrix.  With ``M`` total draws, walk lengths uniform
on ``[1, T]``, and aggregated (downsample-reweighted) pair weights
``W(x, y)``,

    E[W(x, y)] = (M / (T · vol(G))) · Σ_{r=1}^T A_r(x, y),

so the sparsified Eq. (1) entry is

    M̂(x, y) = trunc_log( vol(G)² · W̄(x, y) / (b · M · d_x · d_y) )

where ``W̄`` is the symmetrized aggregate ``(W + Wᵀ)/2`` (the sampling law is
symmetric, so averaging the two orientations halves the variance for free).

Weighted graphs
---------------
The derivation above generalizes verbatim when edges carry positive weights:
seeds are drawn proportional to edge weight (``n_e`` has expectation
``M·w_e/Σw`` — the stationary frequency a weighted walk traverses ``e``),
walk steps use weight-proportional transition probabilities, degrees and
``vol(G)`` become their weighted counterparts, and the downsampling
probability uses ``A_uv = w_e``.  The estimator is unchanged because
``P(x, y) = A_r(x, y)/vol(G)`` still holds entry-wise for the weighted walk
matrix.  What does *not* generalize is a weight of exactly zero: such an
edge can never be seeded yet still occupies a slot in every per-edge array,
and its downsampling probability degenerates to ``p_e = 0`` (an infinite
reweight if it ever survived) — :func:`validate_sparsifier_graph` rejects
those graphs with a typed :class:`~repro.errors.UnsupportedGraphError`
instead of silently producing a biased sparsifier.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

import numpy as np
import scipy.sparse as sp

from repro import telemetry
from repro.errors import SamplingError, UnsupportedGraphError
from repro.graph.compression import CompressedGraph
from repro.graph.csr import CSRGraph
from repro.sparsifier.aggregation import (
    aggregate_hash,
    aggregate_hash_sharded,
    aggregate_sort,
)
from repro.sparsifier.path_sampling import PathSamplingConfig, sample_sparsifier_edges
from repro.utils.parallel import default_workers, resolve_backend
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.timer import StageTimer

GraphLike = Union[CSRGraph, CompressedGraph]


@dataclass
class SparsifierResult:
    """Aggregated sparsifier plus the bookkeeping the estimator needs.

    Attributes
    ----------
    counts:
        Sparse ``n × n`` matrix of aggregated sample weights ``W`` (not yet
        symmetrized or log-transformed).
    num_draws:
        Realized number of PathSampling trials ``M`` before downsampling.
    window:
        The context window ``T`` used.
    stats:
        Construction counters: walk samples, batch count, resolved worker
        count, sampling/aggregation seconds, samples/sec and (for hash
        aggregators) peak table bytes.
    """

    counts: sp.csr_matrix
    num_draws: int
    window: int
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def nnz(self) -> int:
        """Non-zeros retained in the sparsifier."""
        return self.counts.nnz


def trunc_log(matrix: sp.spmatrix) -> sp.csr_matrix:
    """Entry-wise truncated logarithm ``max(0, log x)`` on stored entries.

    The paper stresses this step cannot be omitted (it is what separates
    NetMF/NetSMF from the NPR shortcut).  Entries with ``x <= 1`` vanish,
    which also re-sparsifies the matrix.
    """
    result = matrix.tocsr(copy=True)
    data = result.data
    out = np.zeros_like(data)
    positive = data > 1.0
    out[positive] = np.log(data[positive])
    result.data = out
    result.eliminate_zeros()
    return result


def validate_sparsifier_graph(graph: GraphLike) -> bool:
    """Check ``graph`` is servable by a sparsifier backend.

    Returns ``True`` when the graph is weighted (backends then use
    weight-aware seeding / weighted degrees) and ``False`` for the plain
    unweighted case.  Weighted graphs with zero-weight edges raise
    :class:`~repro.errors.UnsupportedGraphError` — see the module docstring:
    the estimator's seeding and downsampling laws degenerate there.
    """
    flat = graph.decompress() if isinstance(graph, CompressedGraph) else graph
    if flat.weights is None:
        return False
    if flat.weights.size and float(flat.weights.min()) <= 0.0:
        raise UnsupportedGraphError(
            "sparsifier backends require strictly positive edge weights on "
            "weighted graphs (zero-weight edges cannot be seeded and break "
            "the downsampling law); drop or reweight them first"
        )
    return True


def aggregate_sample_counts(
    u: np.ndarray,
    v: np.ndarray,
    w: np.ndarray,
    n: int,
    *,
    aggregator: str = "hash",
    workers: int = 1,
    backend: str = "thread",
    stats: Optional[Dict[str, float]] = None,
):
    """Merge sample triples into unique ``(rows, cols, vals)`` — the shared
    aggregation stage behind every sparsifier backend.

    ``aggregator`` selects ``"hash"`` (shared-table, serial in the parent so
    the result is identical across execution backends), ``"hash-sharded"``
    (fixed 8-shard key partition mapped onto the worker pool — threads or
    shared-memory processes) or ``"sort"``.
    """
    if aggregator == "hash":
        # The shared-table aggregation is already serial in the parent;
        # running it there keeps "hash" bit-identical across backends (the
        # backend only changes who executes the sampling).
        return aggregate_hash(u, v, w, n, stats=stats)
    if aggregator == "hash-sharded":
        # Fixed shard count: the decomposition (and hence the fp summation
        # order) must not depend on ``workers``, mirroring the batch_size
        # design in sampling.  Workers only map shards to threads (or
        # processes).
        return aggregate_hash_sharded(
            u, v, w, n, workers=workers, num_shards=8,
            backend=backend, stats=stats,
        )
    if aggregator == "sort":
        return aggregate_sort(u, v, w, n)
    raise SamplingError(f"unknown aggregator {aggregator!r}")


def build_netmf_sparsifier(
    graph: GraphLike,
    config: PathSamplingConfig,
    seed: SeedLike = None,
    *,
    aggregator: str = "hash",
    timer: Optional[StageTimer] = None,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    batch_size: int = 2_000_000,
) -> SparsifierResult:
    """Sample (Algorithm 2) and aggregate into the count matrix ``W``.

    Parameters
    ----------
    graph:
        Input graph (CSR or compressed).
    config:
        Sampling parameters (window ``T``, sample budget ``M``, downsampling).
    aggregator:
        ``"hash"`` (paper's shared sparse parallel hashing),
        ``"hash-sharded"`` (per-processor tables over a key partition,
        built on the worker pool) or ``"sort"`` (semisort analog).
    timer:
        Optional :class:`StageTimer` to record the construction time under
        ``"sparsifier"`` (Table 5's first column).  Sampling counters
        (samples/sec, batches, peak table bytes, workers) are attached to the
        same stage.
    workers:
        Thread-pool width for sampling (and sharded aggregation); ``None``
        resolves to :func:`repro.utils.parallel.default_workers`.  For a
        fixed ``seed`` and ``batch_size`` the result is bit-identical for
        every worker count.
    backend:
        Execution substrate, ``"thread"`` (default) or ``"process"``
        (out-of-core mode: sampling slabs run in worker processes that
        reopen a memmapped graph, sharded aggregation goes through shared
        memory).  Both backends keep the same batch/shard decomposition and
        therefore the same bits — see
        :func:`repro.sparsifier.path_sampling.sample_sparsifier_edges` and
        :func:`repro.sparsifier.aggregation.aggregate_hash_sharded`.
    batch_size:
        Maximum walk-slab size; bounds peak memory of the sampling stage.
    """
    rng = ensure_rng(seed)
    backend = resolve_backend(backend)
    if workers is None:
        workers = default_workers()
    n = graph.num_vertices
    timer = timer if timer is not None else StageTimer()
    stats: Dict[str, float] = {}
    stats["weighted_seeding"] = float(validate_sparsifier_graph(graph))
    with timer.stage(
        "sparsifier", aggregator=aggregator, workers=workers, backend=backend
    ):
        tic = time.perf_counter()
        with telemetry.span("sparsifier.sampling"):
            u, v, w, draws = sample_sparsifier_edges(
                graph, config, rng, batch_size=batch_size, workers=workers,
                backend=backend, stats=stats,
            )
        stats["sampling_seconds"] = time.perf_counter() - tic
        stats["samples_per_sec"] = u.size / max(stats["sampling_seconds"], 1e-12)
        tic = time.perf_counter()
        with telemetry.span("sparsifier.aggregation", aggregator=aggregator):
            rows, cols, vals = aggregate_sample_counts(
                u, v, w, n, aggregator=aggregator, workers=workers,
                backend=backend, stats=stats,
            )
        stats["aggregation_seconds"] = time.perf_counter() - tic
        counts = sp.csr_matrix((vals, (rows, cols)), shape=(n, n))
        telemetry.gauge("sparsifier.nnz").set(counts.nnz)
        # Total retained mass: the health layer's contract check compares
        # this against the draw budget M (E[Σ W] = M for the estimator).
        stats["total_mass"] = float(counts.sum())
    for name in (
        "walk_samples", "batches", "workers", "samples_per_sec",
        "peak_table_bytes",
    ):
        if name in stats:
            timer.set_counter("sparsifier", name, float(stats[name]))
    return SparsifierResult(
        counts=counts, num_draws=draws, window=config.window, stats=stats
    )


def sparsifier_to_netmf_matrix(
    graph: GraphLike,
    result: SparsifierResult,
    *,
    negative_samples: float = 1.0,
) -> sp.csr_matrix:
    """Apply the estimator above: scale, symmetrize, trunc-log.

    Parameters
    ----------
    graph:
        The graph the sparsifier was built from (provides ``vol`` and ``D``).
    result:
        Output of :func:`build_netmf_sparsifier`.
    negative_samples:
        The ``b`` in Eq. (1) (skip-gram negative-sample count, default 1).
    """
    if result.num_draws <= 0:
        raise SamplingError("sparsifier has no samples")
    if negative_samples <= 0:
        raise SamplingError(f"negative_samples must be > 0, got {negative_samples}")
    degrees = graph.weighted_degrees()
    if np.any(degrees <= 0):
        # Isolated vertices never appear in samples; give them degree 1 to
        # keep the diagonal scaling finite (their rows stay empty anyway).
        degrees = np.where(degrees > 0, degrees, 1.0)
    volume = graph.volume
    scale = volume * volume / (negative_samples * result.num_draws)

    symmetric = (result.counts + result.counts.T) * 0.5
    inv_d = sp.diags(1.0 / degrees)
    scaled = (inv_d @ symmetric @ inv_d) * scale
    return trunc_log(scaled)
