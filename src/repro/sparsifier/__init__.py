"""Parallel sparsifier construction (paper Sections 3.2 and 4.2).

Pipeline: a pluggable **sparsifier backend** (:mod:`repro.sparsifier.backends`)
builds the count matrix — either degree-based edge **downsampling**
probabilities → per-edge **PathSampling** (Algorithms 1 and 2), or the
PSNE-style push-based **PPR** estimator — merged by **sparse hashing**
aggregation into the trunc-log **NetMF matrix estimator** factorized
downstream.
"""

from repro.sparsifier.downsampling import downsampling_probabilities
from repro.sparsifier.path_sampling import (
    PathSamplingConfig,
    path_sample_pairs,
    sample_sparsifier_edges,
)
from repro.sparsifier.hashtable import SparseParallelHashTable, hash_partition
from repro.sparsifier.aggregation import (
    aggregate_dict,
    aggregate_hash,
    aggregate_hash_sharded,
    aggregate_histogram,
    aggregate_sort,
)
from repro.sparsifier.builder import (
    SparsifierResult,
    aggregate_sample_counts,
    build_netmf_sparsifier,
    sparsifier_to_netmf_matrix,
    validate_sparsifier_graph,
)
from repro.sparsifier.backends import (
    PathSamplingBackend,
    PPRBackend,
    SPARSIFIER_BACKENDS,
    SparsifierBackend,
    build_sparsifier,
    get_sparsifier_backend,
    sparsifier_backend_names,
)
from repro.sparsifier.ppr import sample_ppr_counts, walk_operator

__all__ = [
    "downsampling_probabilities",
    "PathSamplingConfig",
    "path_sample_pairs",
    "sample_sparsifier_edges",
    "SparseParallelHashTable",
    "hash_partition",
    "aggregate_dict",
    "aggregate_hash",
    "aggregate_hash_sharded",
    "aggregate_histogram",
    "aggregate_sort",
    "SparsifierResult",
    "aggregate_sample_counts",
    "build_netmf_sparsifier",
    "sparsifier_to_netmf_matrix",
    "validate_sparsifier_graph",
    "SparsifierBackend",
    "PathSamplingBackend",
    "PPRBackend",
    "SPARSIFIER_BACKENDS",
    "build_sparsifier",
    "get_sparsifier_backend",
    "sparsifier_backend_names",
    "sample_ppr_counts",
    "walk_operator",
]
