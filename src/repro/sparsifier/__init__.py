"""Parallel sparsifier construction (paper Sections 3.2 and 4.2).

Pipeline: degree-based edge **downsampling** probabilities → per-edge
**PathSampling** (Algorithms 1 and 2) → **sparse hashing** aggregation →
the trunc-log **NetMF matrix estimator** factorized downstream.
"""

from repro.sparsifier.downsampling import downsampling_probabilities
from repro.sparsifier.path_sampling import (
    PathSamplingConfig,
    path_sample_pairs,
    sample_sparsifier_edges,
)
from repro.sparsifier.hashtable import SparseParallelHashTable, hash_partition
from repro.sparsifier.aggregation import (
    aggregate_dict,
    aggregate_hash,
    aggregate_hash_sharded,
    aggregate_histogram,
    aggregate_sort,
)
from repro.sparsifier.builder import (
    SparsifierResult,
    build_netmf_sparsifier,
    sparsifier_to_netmf_matrix,
)

__all__ = [
    "downsampling_probabilities",
    "PathSamplingConfig",
    "path_sample_pairs",
    "sample_sparsifier_edges",
    "SparseParallelHashTable",
    "hash_partition",
    "aggregate_dict",
    "aggregate_hash",
    "aggregate_hash_sharded",
    "aggregate_histogram",
    "aggregate_sort",
    "SparsifierResult",
    "build_netmf_sparsifier",
    "sparsifier_to_netmf_matrix",
]
