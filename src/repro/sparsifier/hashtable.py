"""Sparse parallel hash table (paper Section 4.2).

The paper aggregates sampled edges in a single shared, lock-free,
open-addressing hash table with linear probing; counts are accumulated with
the hardware ``xadd`` atomic.  This module reproduces the data structure's
semantics in numpy:

* open addressing with linear probing over a power-of-two slot array;
* 64-bit keys packing an ``(u, v)`` pair (``u * n + v``);
* batched *vectorized* inserts: each batch resolves all probes in parallel
  (the analog of many threads inserting concurrently), with collisions within
  a batch resolved by a scatter-add — the numpy stand-in for ``xadd``;
* no deletions (the workload never needs them — see Section 4.2);
* exact counts: every sample is accounted for, as the paper stresses.

The table grows by rehashing when load factor exceeds ``max_load``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import HashTableFullError

_EMPTY = np.int64(-1)
# Fibonacci hashing multiplier (2^64 / golden ratio, as an odd constant).
_HASH_MULT = np.uint64(0x9E3779B97F4A7C15)


def _hash_keys(keys: np.ndarray, mask: np.uint64) -> np.ndarray:
    """Multiplicative hash of int64 keys onto the slot space ``[0, mask]``."""
    h = keys.astype(np.uint64) * _HASH_MULT
    h ^= h >> np.uint64(29)
    return (h & mask).astype(np.int64)


def hash_partition(keys: np.ndarray, num_partitions: int) -> np.ndarray:
    """Assign each key to one of ``num_partitions`` shards by hash.

    Uses the same multiplicative mix as the table's probe hash but folds the
    *high* bits onto the shard space, so shard choice is nearly independent of
    the slot a key probes inside its shard's table.  Used by the sharded
    (per-processor tables) aggregation path.
    """
    if num_partitions < 1:
        raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
    keys = np.asarray(keys, dtype=np.int64)
    h = keys.astype(np.uint64) * _HASH_MULT
    h ^= h >> np.uint64(29)
    return ((h >> np.uint64(33)) % np.uint64(num_partitions)).astype(np.int64)


class SparseParallelHashTable:
    """Open-addressing (key → float accumulator) table with batch inserts.

    Parameters
    ----------
    capacity_hint:
        Expected number of distinct keys; the slot array starts at the next
        power of two above ``capacity_hint / max_load``.
    max_load:
        Grow when ``distinct / slots`` exceeds this (default 0.5, typical for
        linear probing).
    """

    def __init__(
        self,
        capacity_hint: int = 1024,
        *,
        max_load: float = 0.5,
        compact: bool = False,
    ) -> None:
        if capacity_hint < 1:
            raise ValueError(f"capacity_hint must be >= 1, got {capacity_hint}")
        if not 0.0 < max_load < 1.0:
            raise ValueError(f"max_load must be in (0, 1), got {max_load}")
        self.max_load = max_load
        # ``compact`` implements the paper's §6 future-work direction
        # ("designing efficient compression techniques for these data
        # structures"): int32 keys + float32 accumulators halve the
        # footprint when the packed key space fits in 31 bits.
        self.compact = compact
        self._key_dtype = np.int32 if compact else np.int64
        self._value_dtype = np.float32 if compact else np.float64
        slots = 1
        while slots * max_load < capacity_hint:
            slots <<= 1
        slots = max(slots, 8)
        self._keys = np.full(slots, _EMPTY, dtype=self._key_dtype)
        self._values = np.zeros(slots, dtype=self._value_dtype)
        self._count = 0
        # Probe accounting (telemetry): linear-probing rounds executed per
        # unique-insert call, accumulated over the table's lifetime.  One
        # "round" advances every still-unplaced key by one slot, so rounds
        # bound the worst-case probe length of that batch.
        self.total_probe_rounds = 0
        self.max_probe_rounds = 0
        self.insert_calls = 0

    # ------------------------------------------------------------------ sizes
    @property
    def num_slots(self) -> int:
        """Current slot-array length (a power of two)."""
        return self._keys.size

    def __len__(self) -> int:
        """Number of distinct keys stored."""
        return self._count

    @property
    def load_factor(self) -> float:
        """``distinct keys / slots``."""
        return self._count / self._keys.size

    def size_in_bytes(self) -> int:
        """Backing-array memory footprint."""
        return self._keys.nbytes + self._values.nbytes

    # ---------------------------------------------------------------- inserts
    def add_batch(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Accumulate ``values`` into the slots of ``keys`` (duplicates sum).

        This is the bulk-parallel insert: duplicates *within* the batch are
        merged by a sort-free scatter-add (the ``xadd`` analog) and new keys
        are placed by vectorized linear probing rounds.
        """
        keys = np.asarray(keys, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if keys.shape != values.shape:
            raise ValueError("keys and values must be parallel arrays")
        if keys.size == 0:
            return
        if np.any(keys < 0):
            raise ValueError("keys must be non-negative (≥1 slot sentinel is -1)")
        # int32 can represent every key up to 2^31 - 1; only the sentinel -1
        # is reserved, so reject strictly-larger keys only.
        if self.compact and keys.max() > 2**31 - 1:
            raise ValueError(
                "compact table holds int32 keys; packed key exceeds 2^31 - 1"
            )
        keys = keys.astype(self._key_dtype, copy=False)
        values = values.astype(self._value_dtype, copy=False)
        # Pre-merge duplicates within the batch so probing sees unique keys.
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        merged = np.zeros(unique_keys.size, dtype=np.float64)
        np.add.at(merged, inverse, values)  # the atomic-xadd analog
        self._ensure_capacity(self._count + unique_keys.size)
        self._insert_unique(unique_keys, merged)

    def add_pairs(
        self, rows: np.ndarray, cols: np.ndarray, values: np.ndarray, n: int
    ) -> None:
        """Accumulate weighted ``(row, col)`` pairs; keys pack as ``row*n+col``.

        Empty batches are a no-op: a worker whose batch has no surviving
        ``src < dst`` edges (tiny or sparse partitions) must be able to flush
        nothing without tripping the zero-size reductions below.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if rows.shape != cols.shape:
            raise ValueError("rows and cols must be parallel arrays")
        if rows.size == 0:
            return
        if rows.max() >= n or cols.max() >= n:
            raise ValueError("pair indices out of range for given n")
        self.add_batch(rows * np.int64(n) + cols, values)

    def _insert_unique(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Probe-and-place unique ``keys``; assumes capacity is ensured."""
        mask = np.uint64(self._keys.size - 1)
        slots = _hash_keys(keys, mask)
        pending = np.arange(keys.size)
        rounds = 0
        self.insert_calls += 1
        for _ in range(self._keys.size):
            if pending.size == 0:
                self.total_probe_rounds += rounds
                if rounds > self.max_probe_rounds:
                    self.max_probe_rounds = rounds
                return
            rounds += 1
            slot = slots[pending]
            resident = self._keys[slot]
            # Case 1: slot already holds the key -> accumulate.
            hit = resident == keys[pending]
            if hit.any():
                np.add.at(self._values, slot[hit], values[pending[hit]])
            # Case 2: slot empty -> try to claim.  Batch collisions (two new
            # keys hashing to one empty slot) are detected by electing one
            # winner per slot and retrying the rest.
            empty = resident == _EMPTY
            claim_idx = pending[empty]
            claim_slot = slot[empty]
            if claim_idx.size:
                order = np.argsort(claim_slot, kind="stable")
                claim_slot = claim_slot[order]
                claim_idx = claim_idx[order]
                winner = np.ones(claim_slot.size, dtype=bool)
                winner[1:] = claim_slot[1:] != claim_slot[:-1]
                win_slot = claim_slot[winner]
                win_idx = claim_idx[winner]
                self._keys[win_slot] = keys[win_idx]
                self._values[win_slot] += values[win_idx]
                self._count += win_idx.size
            else:
                winner = np.empty(0, dtype=bool)
            # Everything not hit and not a winning claim probes the next slot.
            done = np.zeros(pending.size, dtype=bool)
            done[hit] = True
            if claim_idx.size:
                empty_positions = np.flatnonzero(empty)[order]
                done[empty_positions[winner]] = True
            pending = pending[~done]
            slots[pending] = (slots[pending] + 1) & np.int64(mask)
        if pending.size:
            raise HashTableFullError(
                "probe sequence exhausted; table unexpectedly full"
            )

    def _ensure_capacity(self, needed: int) -> None:
        """Grow (rehash) until ``needed`` keys fit under ``max_load``."""
        while needed > self.max_load * self._keys.size:
            old_keys = self._keys
            old_values = self._values
            occupied = old_keys != _EMPTY
            self._keys = np.full(old_keys.size * 2, _EMPTY, dtype=self._key_dtype)
            self._values = np.zeros(old_values.size * 2, dtype=self._value_dtype)
            self._count = 0
            if occupied.any():
                self._insert_unique(old_keys[occupied], old_values[occupied])

    # ----------------------------------------------------------------- reads
    def get(self, key: int, default: float = 0.0) -> float:
        """Value stored under ``key`` (``default`` when absent)."""
        mask = np.uint64(self._keys.size - 1)
        slot = int(_hash_keys(np.asarray([key], dtype=np.int64), mask)[0])
        for _ in range(self._keys.size):
            resident = self._keys[slot]
            if resident == key:
                return float(self._values[slot])
            if resident == _EMPTY:
                return default
            slot = (slot + 1) & int(mask)
        return default

    def items(self) -> Tuple[np.ndarray, np.ndarray]:
        """All ``(keys, values)`` as arrays (unspecified order)."""
        occupied = self._keys != _EMPTY
        return self._keys[occupied].copy(), self._values[occupied].copy()

    def to_pairs(self, n: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Unpack keys back into ``(rows, cols, values)`` given width ``n``."""
        keys, values = self.items()
        return keys // n, keys % n, values
