"""PathSampling (Algorithm 1) and the downsampled per-edge variant (Algorithm 2).

Algorithm 1 takes a seed edge ``(u, v)`` and a walk length ``r``: it picks a
uniform split ``s ∈ [0, r-1]``, walks ``u`` for ``s`` steps and ``v`` for
``r - 1 - s`` steps, and returns the endpoint pair ``(u', v')``.  A short
derivation (see :mod:`repro.sparsifier.builder`) shows the output pair is
distributed proportional to the ``r``-step walk matrix
``A_r = A (D⁻¹A)^{r-1}``, which is what makes the sparsifier unbiased.

Algorithm 2 replaces "pick M uniformly random seed edges" by a per-edge loop
that is cache-friendly and compression-friendly: every edge ``e`` runs the
sampler ``n_e = ⌊M/m⌋ + Bernoulli({M/m})`` times, and each run first flips the
downsampling coin ``p_e``; survivors carry weight ``1/p_e``.

Everything here is vectorized: seed edges are expanded into flat arrays,
grouped by walk length ``r``, and the two walks are advanced in lock-step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro import telemetry
from repro.errors import SamplingError
from repro.graph.compression import CompressedGraph
from repro.graph.csr import CSRGraph
from repro.graph.walks import step_random_walk
from repro.sparsifier.downsampling import downsampling_probabilities
from repro.utils.parallel import default_workers, parallel_map, resolve_backend
from repro.utils.rng import SeedLike, ensure_rng, spawn_batch_rngs

GraphLike = Union[CSRGraph, CompressedGraph]


# Per-process sampling context, installed once per worker by the pool
# initializer (see ``sample_sparsifier_edges(backend="process")``): the walk
# graph plus the derived seed-edge arrays, so each task pickles only its
# batch of seed indices and its RNG stream.
_SAMPLE_CTX: Dict[str, object] = {}


def _sample_worker_init(graph_spec: tuple, config: "PathSamplingConfig") -> None:
    """Rebuild the sampling context inside a worker process.

    ``graph_spec`` is ``("mmap", path)`` — reopen the CSR v2 container
    memmapped, so every worker shares the page cache instead of holding a
    private copy of the graph — or ``("pickle", graph)`` for in-memory
    graphs.  The derived arrays (masked endpoints, downsampling
    probabilities) are recomputed here; they are pure deterministic functions
    of the graph and config, so they match the parent's bit for bit.
    """
    if graph_spec[0] == "mmap":
        from repro.graph.io import load_csr

        graph = load_csr(graph_spec[1])
    else:
        graph = graph_spec[1]
    flat = graph.decompress() if isinstance(graph, CompressedGraph) else graph
    src, dst = flat.edge_endpoints()
    mask = src < dst
    src, dst = src[mask], dst[mask]
    edge_w = flat.weights[mask] if flat.weights is not None else None
    if config.downsample:
        probs = downsampling_probabilities(
            src,
            dst,
            flat.weighted_degrees(),
            constant=config.downsample_constant,
            edge_weights=edge_w,
        )
    else:
        probs = np.ones(src.size)
    _SAMPLE_CTX.update(
        graph=graph, src=src, dst=dst, probs=probs, window=config.window
    )


def _walk_chunk_proc(
    index: int, batch: np.ndarray, chunk_rng: np.random.Generator
):
    """Process-pool walk task: same operation sequence as the thread path's
    ``walk_chunk`` closure (telemetry spans aside — they draw no randomness),
    so a given ``(batch, chunk_rng)`` yields bit-identical walks.

    The span/metric instrumentation mirrors ``walk_chunk`` and records into
    the *worker's* tracer/registry (installed by the telemetry shim when
    tracing is on); the parent merges the spool at pool shutdown, so
    ``sparsifier.batch`` spans appear on the worker-pid lanes of the unified
    trace.  With telemetry off these are the usual gated no-ops.
    """
    src = _SAMPLE_CTX["src"]
    dst = _SAMPLE_CTX["dst"]
    probs = _SAMPLE_CTX["probs"]
    with telemetry.span(
        "sparsifier.batch", batch=index, size=int(batch.size)
    ) as span:
        lengths = chunk_rng.integers(1, _SAMPLE_CTX["window"] + 1, size=batch.size)
        flip = chunk_rng.random(batch.size) < 0.5
        s_u = np.where(flip, dst[batch], src[batch])
        s_v = np.where(flip, src[batch], dst[batch])
        u_prime, v_prime = path_sample_pairs(
            _SAMPLE_CTX["graph"], s_u, s_v, lengths, chunk_rng
        )
    elapsed = getattr(span, "duration", None)
    if elapsed is not None:
        telemetry.histogram("sparsifier.batch_seconds").observe(elapsed)
        telemetry.counter("sparsifier.batches").inc()
        telemetry.counter("sparsifier.walk_samples").inc(batch.size)
    return u_prime, v_prime, 1.0 / probs[batch]


@dataclass(frozen=True)
class PathSamplingConfig:
    """Parameters of the sparsifier sampling stage.

    Attributes
    ----------
    window:
        Context window size ``T`` (walk lengths are uniform in ``[1, T]``).
    num_samples:
        Expected total number of PathSampling draws ``M`` (before the
        downsampling coin).  The paper parameterizes this as multiples of
        ``T·m`` — use :meth:`samples_for_multiplier`.
    downsample:
        Apply the degree-based downsampling coin (LightNE) or keep every draw
        (plain NetSMF).
    downsample_constant:
        The constant ``C`` (``log n`` when ``None``).
    """

    window: int = 10
    num_samples: int = 0
    downsample: bool = True
    downsample_constant: Optional[float] = None

    def __post_init__(self) -> None:
        if self.window < 1:
            raise SamplingError(f"window T must be >= 1, got {self.window}")
        if self.num_samples < 0:
            raise SamplingError(
                f"num_samples must be non-negative, got {self.num_samples}"
            )

    @staticmethod
    def samples_for_multiplier(graph: GraphLike, window: int, multiplier: float) -> int:
        """``M = multiplier · T · m`` — the paper's M=0.1Tm … 20Tm notation."""
        return int(round(multiplier * window * graph.num_edges))


def path_sample_pairs(
    graph: GraphLike,
    seed_u: np.ndarray,
    seed_v: np.ndarray,
    lengths: np.ndarray,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized Algorithm 1 over arrays of seed edges.

    For each ``i``: picks ``s ~ Uniform[0, lengths[i]-1]``, walks
    ``seed_u[i]`` for ``s`` steps and ``seed_v[i]`` for ``lengths[i]-1-s``
    steps, returning the two walk endpoints.
    """
    rng = ensure_rng(seed)
    seed_u = np.asarray(seed_u, dtype=np.int64)
    seed_v = np.asarray(seed_v, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if not (seed_u.shape == seed_v.shape == lengths.shape):
        raise SamplingError("seed_u, seed_v and lengths must be parallel arrays")
    if lengths.size and lengths.min() < 1:
        raise SamplingError("walk lengths must be >= 1")
    splits = (rng.random(lengths.size) * lengths).astype(np.int64)
    u_prime = step_random_walk(graph, seed_u, splits, rng)
    v_prime = step_random_walk(graph, seed_v, lengths - 1 - splits, rng)
    return u_prime, v_prime


def _per_edge_sample_counts(
    num_edges: int, num_samples: int, rng: np.random.Generator
) -> np.ndarray:
    """``n_e = ⌊M/m⌋ + Bernoulli({M/m})`` per edge (Algorithm 2, line 3)."""
    base, frac = divmod(num_samples, num_edges)
    counts = np.full(num_edges, base, dtype=np.int64)
    counts += rng.random(num_edges) < (frac / num_edges)
    return counts


def _weighted_sample_counts(
    edge_weights: np.ndarray, num_samples: int, rng: np.random.Generator
) -> np.ndarray:
    """Per-edge counts with expectation ``M · w_e / Σw``.

    The unweighted uniform-edge process generalizes to weighted graphs by
    seeding proportional to edge weight (a random walk traverses edge ``e``
    with stationary frequency ``w_e / Σw``); floor + Bernoulli keeps the
    realization integral and the expectation exact per edge.
    """
    expectation = num_samples * edge_weights / edge_weights.sum()
    base = np.floor(expectation).astype(np.int64)
    frac = expectation - base
    return base + (rng.random(edge_weights.size) < frac)


def sample_sparsifier_edges(
    graph: GraphLike,
    config: PathSamplingConfig,
    seed: SeedLike = None,
    *,
    batch_size: int = 2_000_000,
    workers: Optional[int] = 1,
    backend: Optional[str] = None,
    stats: Optional[Dict[str, float]] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Run Algorithm 2 end to end.

    Returns ``(u', v', weights, draws)`` where ``weights[i] = 1/p_e`` of the
    seed edge of sample ``i`` (all ones when downsampling is off) and
    ``draws`` is the realized number of PathSampling trials before the coin
    (the paper's ``M``; needed for the estimator's normalization).

    Work is split into fixed-size slabs of at most ``batch_size`` surviving
    seeds — bounding peak memory regardless of ``workers`` — and each slab is
    walked with its own RNG stream derived from the *batch index* via a
    ``SeedSequence``.  Slabs run on a thread pool when ``workers > 1`` (numpy
    walk kernels release the GIL — the Python analog of the paper's parallel
    ``MapEdges``) and results are concatenated in batch order, so for a fixed
    ``seed`` and ``batch_size`` the output is bit-identical for every worker
    count.  ``workers=None`` resolves to
    :func:`repro.utils.parallel.default_workers`.

    ``backend="process"`` walks the slabs in worker *processes* instead:
    each worker rebuilds the sampling context once via a pool initializer —
    reopening the graph's CSR v2 container memmapped when the graph was
    loaded with ``mmap`` (``graph.mmap_source``), falling back to one
    pickled copy otherwise — and tasks ship only a batch of seed indices
    plus the batch's RNG stream.  The per-batch-index streams make the
    result bit-identical to the thread backend at every worker count.

    ``stats``, when given, receives sampling counters: realized draws,
    surviving walk samples, batch count/size and the resolved worker count.
    When telemetry is enabled (:func:`repro.telemetry.enable`) each slab is
    additionally traced as a ``sparsifier.batch`` span under the caller's
    current span, with per-batch latency and sample-count metrics recorded
    in the global registry.
    """
    rng = ensure_rng(seed)
    backend = resolve_backend(backend)
    if workers is None:
        workers = default_workers()
    if batch_size < 1:
        raise SamplingError(f"batch_size must be >= 1, got {batch_size}")
    if isinstance(graph, CompressedGraph):
        flat = graph.decompress()
    else:
        flat = graph
    if flat.num_edges == 0:
        raise SamplingError("cannot sample from an empty graph")
    if config.num_samples <= 0:
        raise SamplingError("config.num_samples must be set (> 0)")

    src, dst = flat.edge_endpoints()
    mask = src < dst
    src, dst = src[mask], dst[mask]
    edge_w = flat.weights[mask] if flat.weights is not None else None
    # ``m`` is the number of *seedable* (non-loop) undirected edges.  It can
    # be smaller than ``flat.num_edges`` when the graph carries self-loops —
    # every per-edge array below must be sized by the masked count or the
    # seed indices drift out of alignment.
    m = src.size
    if m == 0:
        raise SamplingError("graph has no non-loop edges to seed from")

    if edge_w is not None:
        counts = _weighted_sample_counts(edge_w, config.num_samples, rng)
    else:
        counts = _per_edge_sample_counts(m, config.num_samples, rng)
    total_draws = int(counts.sum())

    if config.downsample:
        probs = downsampling_probabilities(
            src,
            dst,
            flat.weighted_degrees(),
            constant=config.downsample_constant,
            edge_weights=edge_w,
        )
    else:
        probs = np.ones(m)

    # Expand seeds, apply the coin per draw, then walk survivors in batches.
    seed_edge = np.repeat(np.arange(m, dtype=np.int64), counts)
    if config.downsample:
        survive = rng.random(seed_edge.size) < probs[seed_edge]
        seed_edge = seed_edge[survive]
    walk_graph = graph  # walks run on the (possibly compressed) original
    # Batch spans run on pool threads, which carry no current-span stack —
    # capture the parent here (the sparsifier/sampling span when tracing).
    parent_span = telemetry.current_span()

    def walk_chunk(
        index: int, batch: np.ndarray, chunk_rng: np.random.Generator
    ):
        with telemetry.span(
            "sparsifier.batch", parent=parent_span,
            batch=index, size=int(batch.size),
        ) as span:
            lengths = chunk_rng.integers(1, config.window + 1, size=batch.size)
            # Randomize seed orientation: (u,v) vs (v,u) — the uniform-edge
            # process is orientation-symmetric.
            flip = chunk_rng.random(batch.size) < 0.5
            s_u = np.where(flip, dst[batch], src[batch])
            s_v = np.where(flip, src[batch], dst[batch])
            u_prime, v_prime = path_sample_pairs(
                walk_graph, s_u, s_v, lengths, chunk_rng
            )
        elapsed = getattr(span, "duration", None)
        if elapsed is not None:
            telemetry.histogram("sparsifier.batch_seconds").observe(elapsed)
            telemetry.counter("sparsifier.batches").inc()
            telemetry.counter("sparsifier.walk_samples").inc(batch.size)
        return u_prime, v_prime, 1.0 / probs[batch]

    starts = list(range(0, seed_edge.size, batch_size))
    if stats is not None:
        stats["draws"] = total_draws
        stats["walk_samples"] = int(seed_edge.size)
        stats["batches"] = len(starts)
        stats["batch_size"] = int(batch_size)
        stats["workers"] = int(workers)
        stats["backend"] = backend
    if seed_edge.size == 0:
        empty_i = np.empty(0, dtype=np.int64)
        return empty_i, empty_i.copy(), np.empty(0), total_draws

    # One RNG stream per batch *index* (not per worker chunk): the batch
    # decomposition depends only on ``batch_size``, so the sampled walks are
    # independent of how many threads execute them.
    batch_rngs = spawn_batch_rngs(rng, len(starts))
    args = [
        (index, seed_edge[start : start + batch_size], batch_rng)
        for index, (start, batch_rng) in enumerate(zip(starts, batch_rngs))
    ]
    if backend == "process" and workers > 1:
        mmap_source = getattr(graph, "mmap_source", None)
        graph_spec = (
            ("mmap", mmap_source) if mmap_source else ("pickle", graph)
        )
        results = parallel_map(
            _walk_chunk_proc,
            args,
            workers=workers,
            backend="process",
            initializer=_sample_worker_init,
            initargs=(graph_spec, config),
            label="sparsifier.sampling",
        )
    else:
        results = parallel_map(
            walk_chunk, args, workers=workers, label="sparsifier.sampling"
        )
    telemetry.counter("sparsifier.draws").inc(total_draws)
    return (
        np.concatenate([r[0] for r in results]),
        np.concatenate([r[1] for r in results]),
        np.concatenate([r[2] for r in results]),
        total_draws,
    )
