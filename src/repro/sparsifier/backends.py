"""Pluggable sparsifier backends — the estimator layer behind LightNE/NetSMF.

The paper's pipeline hardwired one recipe (PathSampling walks into a
hash-sharded aggregate).  This module turns the recipe into a *backend*: a
:class:`SparsifierBackend` builds the count matrix ``W`` whose symmetrized,
rescaled trunc-log is the NetMF estimator
(:func:`repro.sparsifier.builder.sparsifier_to_netmf_matrix`), and every
backend honors the same contract:

* ``build(graph, config, seed, ...) -> SparsifierResult`` where ``config``
  is the shared :class:`~repro.sparsifier.path_sampling.PathSamplingConfig`
  (window ``T``, budget ``M``);
* ``E[W(x, y)] = (M / vol(G)) · d_x · S(x, y)`` with
  ``S = (1/T)·Σ_{r=1..T}(D⁻¹A)^r``, and ``result.num_draws = M`` so the
  downstream normalization is backend-independent;
* bit-identical output for a fixed ``(seed, batch_size)`` at every worker
  count on both execution substrates (``"thread"``/``"process"``), via the
  per-batch RNG-stream decomposition;
* the stage lands on the caller's :class:`~repro.utils.timer.StageTimer`
  under ``"sparsifier"`` with the shared counters (walk_samples, batches,
  workers, samples_per_sec, peak table bytes), so traces, the run ledger and
  the regression gate see every backend the same way.

Backends:

``"path"`` (:class:`PathSamplingBackend`, default)
    The paper's Monte-Carlo pipeline, verbatim — delegates to
    :func:`repro.sparsifier.builder.build_netmf_sparsifier`.
``"ppr"`` (:class:`PPRBackend`)
    PSNE-style push-based personalized-PageRank proximity: computes the walk
    mass deterministically with per-source residual thresholding and
    randomized-rounds it into counts (:mod:`repro.sparsifier.ppr`).

Select per run with the ``sparsifier=`` field of ``LightNEParams`` /
``NetSMFParams`` (CLI: ``--sparsifier``).
"""

from __future__ import annotations

import abc
import time
from typing import ClassVar, Dict, Optional, Union

import scipy.sparse as sp

from repro import telemetry
from repro.errors import SamplingError
from repro.telemetry import health
from repro.graph.compression import CompressedGraph
from repro.graph.csr import CSRGraph
from repro.sparsifier.builder import (
    SparsifierResult,
    aggregate_sample_counts,
    build_netmf_sparsifier,
    validate_sparsifier_graph,
)
from repro.sparsifier.path_sampling import PathSamplingConfig
from repro.sparsifier.ppr import sample_ppr_counts
from repro.utils.parallel import default_workers, resolve_backend
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.timer import StageTimer

GraphLike = Union[CSRGraph, CompressedGraph]

# Stats keys promoted to StageTimer counters — the ledger/regression-gate
# contract shared by every backend (mirrors build_netmf_sparsifier).
_STAGE_COUNTERS = (
    "walk_samples", "batches", "workers", "samples_per_sec",
    "peak_table_bytes",
)


class SparsifierBackend(abc.ABC):
    """One way to build the NetMF count matrix ``W`` (contract above)."""

    name: ClassVar[str]

    @abc.abstractmethod
    def build(
        self,
        graph: GraphLike,
        config: PathSamplingConfig,
        seed: SeedLike = None,
        *,
        aggregator: str = "hash",
        timer: Optional[StageTimer] = None,
        workers: Optional[int] = None,
        backend: Optional[str] = None,
        batch_size: int = 2_000_000,
    ) -> SparsifierResult:
        """Build and aggregate the count matrix for ``graph``."""


class PathSamplingBackend(SparsifierBackend):
    """The paper's Monte-Carlo sparsifier (downsampled PathSampling).

    A thin veneer over :func:`build_netmf_sparsifier` — same call, same RNG
    consumption, same aggregation — so embeddings through this backend are
    bit-identical to the pre-backend-layer pipeline.
    """

    name = "path"

    def build(
        self,
        graph: GraphLike,
        config: PathSamplingConfig,
        seed: SeedLike = None,
        *,
        aggregator: str = "hash",
        timer: Optional[StageTimer] = None,
        workers: Optional[int] = None,
        backend: Optional[str] = None,
        batch_size: int = 2_000_000,
    ) -> SparsifierResult:
        return build_netmf_sparsifier(
            graph, config, seed, aggregator=aggregator, timer=timer,
            workers=workers, backend=backend, batch_size=batch_size,
        )


class PPRBackend(SparsifierBackend):
    """PSNE-style push-based PPR proximity sparsifier.

    Parameters
    ----------
    resolution:
        Residual threshold in expected samples — frontier entries whose
        final count contribution would fall below it are pruned during the
        push (see :func:`repro.sparsifier.ppr.sample_ppr_counts`).
    """

    name = "ppr"

    def __init__(self, resolution: float = 0.25) -> None:
        self.resolution = resolution

    def build(
        self,
        graph: GraphLike,
        config: PathSamplingConfig,
        seed: SeedLike = None,
        *,
        aggregator: str = "hash",
        timer: Optional[StageTimer] = None,
        workers: Optional[int] = None,
        backend: Optional[str] = None,
        batch_size: int = 2_000_000,
    ) -> SparsifierResult:
        rng = ensure_rng(seed)
        backend = resolve_backend(backend)
        if workers is None:
            workers = default_workers()
        n = graph.num_vertices
        timer = timer if timer is not None else StageTimer()
        stats: Dict[str, float] = {}
        stats["weighted_seeding"] = float(validate_sparsifier_graph(graph))
        with timer.stage(
            "sparsifier", sparsifier=self.name, aggregator=aggregator,
            workers=workers, backend=backend,
        ):
            tic = time.perf_counter()
            with telemetry.span(
                "sparsifier.ppr", window=config.window,
                num_samples=config.num_samples,
            ):
                u, v, w, draws = sample_ppr_counts(
                    graph, config, rng, batch_size=batch_size,
                    workers=workers, backend=backend, stats=stats,
                    resolution=self.resolution,
                )
            stats["sampling_seconds"] = time.perf_counter() - tic
            stats["samples_per_sec"] = u.size / max(
                stats["sampling_seconds"], 1e-12
            )
            tic = time.perf_counter()
            with telemetry.span("sparsifier.aggregation", aggregator=aggregator):
                rows, cols, vals = aggregate_sample_counts(
                    u, v, w, n, aggregator=aggregator, workers=workers,
                    backend=backend, stats=stats,
                )
            stats["aggregation_seconds"] = time.perf_counter() - tic
            counts = sp.csr_matrix((vals, (rows, cols)), shape=(n, n))
            telemetry.gauge("sparsifier.nnz").set(counts.nnz)
            # Same contract stat as build_netmf_sparsifier: retained mass
            # vs the draw budget M (checked by the health layer).
            stats["total_mass"] = float(counts.sum())
        for name in _STAGE_COUNTERS:
            if name in stats:
                timer.set_counter("sparsifier", name, float(stats[name]))
        return SparsifierResult(
            counts=counts, num_draws=draws, window=config.window, stats=stats
        )


SPARSIFIER_BACKENDS: Dict[str, SparsifierBackend] = {
    PathSamplingBackend.name: PathSamplingBackend(),
    PPRBackend.name: PPRBackend(),
}


def sparsifier_backend_names() -> list:
    """Registered backend names, default first."""
    return list(SPARSIFIER_BACKENDS)


def get_sparsifier_backend(name: str) -> SparsifierBackend:
    """Look up a backend by name; unknown names raise :class:`SamplingError`."""
    try:
        return SPARSIFIER_BACKENDS[name]
    except KeyError:
        raise SamplingError(
            f"unknown sparsifier backend {name!r}; known backends: "
            f"{', '.join(sparsifier_backend_names())}"
        ) from None


def build_sparsifier(
    graph: GraphLike,
    config: PathSamplingConfig,
    seed: SeedLike = None,
    *,
    sparsifier: str = "path",
    aggregator: str = "hash",
    timer: Optional[StageTimer] = None,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    batch_size: int = 2_000_000,
) -> SparsifierResult:
    """Dispatch to the named backend — the embedding pipelines' entry point.

    All backends flow through here, so this is where the numerical-health
    layer fingerprints the count matrix (stage ``"sparsifier"``) and checks
    the estimator's total-mass contract ``E[Σ W] = M`` — one hook covering
    every backend identically.  Both are no-ops unless a pipeline installed
    an active :class:`~repro.telemetry.health.HealthRecorder`.
    """
    result = get_sparsifier_backend(sparsifier).build(
        graph, config, seed, aggregator=aggregator, timer=timer,
        workers=workers, backend=backend, batch_size=batch_size,
    )
    health.checkpoint("sparsifier", result.counts)
    health.check_sparsifier_mass(result.counts, result.num_draws)
    return result
