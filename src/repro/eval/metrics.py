"""Metric implementations: Micro/Macro F1, AUC, and ranking metrics.

Written from the definitions (no sklearn dependency) and unit-tested against
hand-computed cases.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.errors import EvaluationError


def _validate_binary_matrix(name: str, matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise EvaluationError(f"{name} must be 2-D (samples × labels)")
    return matrix.astype(bool)


def f1_scores(y_true: np.ndarray, y_pred: np.ndarray) -> Tuple[float, float]:
    """Return ``(micro_f1, macro_f1)`` for multi-label boolean matrices.

    Micro-F1 pools true/false positives over all labels; Macro-F1 averages
    per-label F1 (labels with no true and no predicted instances contribute
    F1 = 0, matching the convention in the NetMF evaluation scripts).
    """
    y_true = _validate_binary_matrix("y_true", y_true)
    y_pred = _validate_binary_matrix("y_pred", y_pred)
    if y_true.shape != y_pred.shape:
        raise EvaluationError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    tp = np.logical_and(y_true, y_pred).sum(axis=0).astype(np.float64)
    fp = np.logical_and(~y_true, y_pred).sum(axis=0).astype(np.float64)
    fn = np.logical_and(y_true, ~y_pred).sum(axis=0).astype(np.float64)

    micro_denominator = 2 * tp.sum() + fp.sum() + fn.sum()
    micro = 2 * tp.sum() / micro_denominator if micro_denominator > 0 else 0.0

    per_label_denominator = 2 * tp + fp + fn
    with np.errstate(invalid="ignore", divide="ignore"):
        per_label = np.where(
            per_label_denominator > 0, 2 * tp / per_label_denominator, 0.0
        )
    macro = float(per_label.mean()) if per_label.size else 0.0
    return float(micro), macro


def auc_score(labels: np.ndarray, scores: np.ndarray) -> float:
    """ROC AUC via the Mann-Whitney U statistic (ties get half credit)."""
    labels = np.asarray(labels).astype(bool).ravel()
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if labels.shape != scores.shape:
        raise EvaluationError("labels and scores must be parallel")
    n_pos = int(labels.sum())
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise EvaluationError("AUC needs both positive and negative examples")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(labels.size, dtype=np.float64)
    sorted_scores = scores[order]
    # Average ranks over tied groups.
    ranks_sorted = np.arange(1, labels.size + 1, dtype=np.float64)
    boundaries = np.flatnonzero(np.diff(sorted_scores)) + 1
    group_starts = np.concatenate([[0], boundaries])
    group_ends = np.concatenate([boundaries, [labels.size]])
    for start, end in zip(group_starts, group_ends):
        ranks_sorted[start:end] = 0.5 * (start + 1 + end)
    ranks[order] = ranks_sorted
    rank_sum = ranks[labels].sum()
    u = rank_sum - n_pos * (n_pos + 1) / 2.0
    return float(u / (n_pos * n_neg))


def ranking_positions(
    positive_scores: np.ndarray, negative_scores: np.ndarray
) -> np.ndarray:
    """Rank of each positive among its own negatives (1 = best; ties averaged).

    ``negative_scores`` has shape ``(num_positives, num_negatives)``.
    """
    positive_scores = np.asarray(positive_scores, dtype=np.float64)
    negative_scores = np.asarray(negative_scores, dtype=np.float64)
    if negative_scores.ndim != 2 or negative_scores.shape[0] != positive_scores.size:
        raise EvaluationError(
            "negative_scores must be (num_positives, num_negatives)"
        )
    better = (negative_scores > positive_scores[:, None]).sum(axis=1)
    ties = (negative_scores == positive_scores[:, None]).sum(axis=1)
    return 1.0 + better + 0.5 * ties


def mean_rank(ranks: np.ndarray) -> float:
    """Mean rank (MR) — lower is better."""
    ranks = np.asarray(ranks, dtype=np.float64)
    if ranks.size == 0:
        raise EvaluationError("mean_rank of empty ranking")
    return float(ranks.mean())


def mean_reciprocal_rank(ranks: np.ndarray) -> float:
    """Mean reciprocal rank (MRR) — higher is better."""
    ranks = np.asarray(ranks, dtype=np.float64)
    if ranks.size == 0:
        raise EvaluationError("mean_reciprocal_rank of empty ranking")
    return float((1.0 / ranks).mean())


def hits_at_k(ranks: np.ndarray, k: int) -> float:
    """Fraction of positives ranked within the top ``k``."""
    if k < 1:
        raise EvaluationError(f"k must be >= 1, got {k}")
    ranks = np.asarray(ranks, dtype=np.float64)
    if ranks.size == 0:
        raise EvaluationError("hits_at_k of empty ranking")
    return float((ranks <= k).mean())


def ranking_report(ranks: np.ndarray, ks: Sequence[int] = (1, 10, 50)) -> Dict[str, float]:
    """Convenience bundle: MR, MRR and HITS@k for each requested ``k``."""
    report = {"MR": mean_rank(ranks), "MRR": mean_reciprocal_rank(ranks)}
    for k in ks:
        report[f"HITS@{k}"] = hits_at_k(ranks, k)
    return report
