"""Evaluation tasks and metrics (paper Section 5.1).

Node classification follows the DeepWalk/NetMF protocol: one-vs-rest logistic
regression on the embeddings, predicting the top-``k`` labels where ``k`` is
the node's true label count, scored by Micro/Macro F1.  Link prediction
follows PBG's protocol: held-out positive edges ranked against sampled
corrupted edges, scored by MR/MRR/HITS@K (plus AUC for the GraphVite
comparison).
"""

from repro.eval.metrics import (
    auc_score,
    f1_scores,
    hits_at_k,
    mean_rank,
    mean_reciprocal_rank,
)
from repro.eval.logistic import LogisticRegressionOVR
from repro.eval.node_classification import (
    NodeClassificationResult,
    evaluate_node_classification,
)
from repro.eval.link_prediction import (
    LinkPredictionResult,
    evaluate_link_prediction,
    link_prediction_auc,
    train_test_split_edges,
)
from repro.eval.retrieval import (
    RetrievalResult,
    neighbor_retrieval,
    retrieval_sweep,
)

__all__ = [
    "auc_score",
    "f1_scores",
    "hits_at_k",
    "mean_rank",
    "mean_reciprocal_rank",
    "LogisticRegressionOVR",
    "NodeClassificationResult",
    "evaluate_node_classification",
    "LinkPredictionResult",
    "evaluate_link_prediction",
    "link_prediction_auc",
    "train_test_split_edges",
    "RetrievalResult",
    "neighbor_retrieval",
    "retrieval_sweep",
]
