"""Nearest-neighbor retrieval evaluation (the intro's recommendation loop).

The paper motivates embeddings through recommendation systems (Alibaba item
recommendation, LinkedIn talent search): downstream consumers retrieve a
node's nearest embedding neighbors and expect actual graph neighbors among
them.  This module scores that use case directly: for each query vertex,
rank all other vertices by cosine similarity and measure how many true graph
neighbors land in the top ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from repro.errors import EvaluationError
from repro.graph.compression import CompressedGraph
from repro.graph.csr import CSRGraph
from repro.utils.rng import SeedLike, ensure_rng

GraphLike = Union[CSRGraph, CompressedGraph]


@dataclass(frozen=True)
class RetrievalResult:
    """Neighbor-retrieval quality at one ``k``."""

    k: int
    recall: float
    precision: float
    num_queries: int

    def as_row(self) -> dict:
        """Table-friendly dict view."""
        return {
            "k": self.k,
            "recall": round(self.recall, 4),
            "precision": round(self.precision, 4),
            "queries": self.num_queries,
        }


def neighbor_retrieval(
    embeddings: np.ndarray,
    graph: GraphLike,
    k: int = 10,
    *,
    num_queries: int = 200,
    seed: SeedLike = None,
) -> RetrievalResult:
    """Recall/precision of true graph neighbors among top-``k`` retrieved.

    Queries are sampled among vertices with at least one neighbor; the query
    vertex itself is excluded from its candidate list.  Recall is averaged
    per query as ``|top-k ∩ neighbors| / min(k, degree)`` (so a full-recall
    score of 1.0 is attainable for every query); precision is
    ``|top-k ∩ neighbors| / k``.
    """
    embeddings = np.asarray(embeddings, dtype=np.float64)
    if isinstance(graph, CompressedGraph):
        graph = graph.decompress()
    n = graph.num_vertices
    if embeddings.shape[0] != n:
        raise EvaluationError(
            f"embeddings rows {embeddings.shape[0]} != graph vertices {n}"
        )
    if k < 1:
        raise EvaluationError(f"k must be >= 1, got {k}")
    if k >= n:
        raise EvaluationError(f"k={k} must be smaller than n={n}")
    rng = ensure_rng(seed)
    eligible = np.flatnonzero(graph.degrees() > 0)
    if eligible.size == 0:
        raise EvaluationError("graph has no edges to retrieve")
    queries = rng.choice(eligible, size=min(num_queries, eligible.size),
                         replace=False)

    norms = np.linalg.norm(embeddings, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    unit = embeddings / norms

    recalls = []
    precisions = []
    for q in queries:
        scores = unit @ unit[q]
        scores[q] = -np.inf
        top = np.argpartition(-scores, k)[:k]
        neighbors = set(graph.neighbors(int(q)).tolist())
        hits = sum(1 for v in top if int(v) in neighbors)
        recalls.append(hits / min(k, len(neighbors)))
        precisions.append(hits / k)
    return RetrievalResult(
        k=k,
        recall=float(np.mean(recalls)),
        precision=float(np.mean(precisions)),
        num_queries=int(queries.size),
    )


def retrieval_sweep(
    embeddings: np.ndarray,
    graph: GraphLike,
    ks: Sequence[int] = (1, 5, 10, 50),
    *,
    num_queries: int = 200,
    seed: SeedLike = None,
) -> list:
    """Retrieval quality across several ``k`` (shares the query sample)."""
    rng = ensure_rng(seed)
    state = rng.integers(0, 2**31)
    return [
        neighbor_retrieval(
            embeddings, graph, k, num_queries=num_queries, seed=int(state)
        )
        for k in ks
    ]
