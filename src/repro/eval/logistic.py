"""One-vs-rest L2-regularized logistic regression on numpy + L-BFGS.

The evaluation protocol of the embedding literature trains an independent
binary logistic classifier per label on the (frozen) node embeddings.  We
implement the trainer directly on ``scipy.optimize.minimize(method="L-BFGS-B")``
with an analytic gradient; no sklearn is available offline and none is
needed — the problem is convex and tiny relative to the embedding step.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.optimize import minimize

from repro.errors import EvaluationError


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


def _fit_binary(
    features: np.ndarray,
    labels: np.ndarray,
    regularization: float,
    max_iter: int,
) -> np.ndarray:
    """Fit one binary classifier; returns ``(d + 1,)`` weights (bias last)."""
    n, d = features.shape
    y = labels.astype(np.float64) * 2.0 - 1.0  # {0,1} -> {-1,+1}

    def objective(w: np.ndarray):
        weights, bias = w[:d], w[d]
        margins = y * (features @ weights + bias)
        # log(1 + exp(-m)) computed stably.
        loss = np.logaddexp(0.0, -margins).sum() + 0.5 * regularization * weights @ weights
        p = _sigmoid(-margins)  # dloss/dmargin = -p
        grad_margin = -p * y
        grad_w = features.T @ grad_margin + regularization * weights
        grad_b = grad_margin.sum()
        return loss, np.concatenate([grad_w, [grad_b]])

    result = minimize(
        objective,
        np.zeros(d + 1),
        jac=True,
        method="L-BFGS-B",
        options={"maxiter": max_iter},
    )
    return result.x


class LogisticRegressionOVR:
    """One-vs-rest multi-label logistic regression.

    Parameters
    ----------
    regularization:
        L2 penalty on the weights (not the bias).
    max_iter:
        L-BFGS iteration cap per label.
    """

    def __init__(self, regularization: float = 1.0, max_iter: int = 200) -> None:
        if regularization < 0:
            raise EvaluationError(
                f"regularization must be >= 0, got {regularization}"
            )
        self.regularization = regularization
        self.max_iter = max_iter
        self.weights: Optional[np.ndarray] = None  # (labels, d)
        self.biases: Optional[np.ndarray] = None  # (labels,)

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegressionOVR":
        """Train one classifier per column of the boolean ``labels`` matrix.

        Labels with a constant column (all true / all false in the training
        split) get a degenerate classifier that scores ``±inf``-like constants.
        """
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels).astype(bool)
        if features.ndim != 2 or labels.ndim != 2:
            raise EvaluationError("features and labels must be 2-D")
        if features.shape[0] != labels.shape[0]:
            raise EvaluationError(
                f"row mismatch: {features.shape[0]} features vs {labels.shape[0]} labels"
            )
        if features.shape[0] == 0:
            raise EvaluationError("cannot fit on an empty training set")
        num_labels = labels.shape[1]
        d = features.shape[1]
        self.weights = np.zeros((num_labels, d))
        self.biases = np.zeros(num_labels)
        for j in range(num_labels):
            column = labels[:, j]
            if column.all() or not column.any():
                # Degenerate: constant score with the right sign.
                self.biases[j] = 30.0 if column.all() else -30.0
                continue
            packed = _fit_binary(features, column, self.regularization, self.max_iter)
            self.weights[j] = packed[:d]
            self.biases[j] = packed[d]
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Raw per-label scores, shape ``(samples, labels)``."""
        if self.weights is None:
            raise EvaluationError("classifier is not fitted")
        features = np.asarray(features, dtype=np.float64)
        return features @ self.weights.T + self.biases[None, :]

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Per-label probabilities."""
        return _sigmoid(self.decision_function(features))

    def predict_top_k(self, features: np.ndarray, counts: np.ndarray) -> np.ndarray:
        """The literature's protocol: for each sample, predict its ``counts[i]``
        highest-scoring labels (the true label count is assumed known)."""
        scores = self.decision_function(features)
        counts = np.asarray(counts, dtype=np.int64)
        if counts.shape != (scores.shape[0],):
            raise EvaluationError("counts must have one entry per sample")
        predictions = np.zeros_like(scores, dtype=bool)
        order = np.argsort(-scores, axis=1)
        for i in range(scores.shape[0]):
            k = min(int(counts[i]), scores.shape[1])
            predictions[i, order[i, :k]] = True
        return predictions
