"""Link-prediction evaluation (PBG and GraphVite protocols, paper §5.1/5.3).

PBG protocol (LiveJournal, ClueWeb, Hyperlink2014): hold out a fraction of
edges from the training graph; after embedding, rank each held-out positive
edge's dot-product score against ``num_negatives`` corrupted edges (random
tail replacement); report MR, MRR and HITS@K.

GraphVite protocol (Hyperlink-PLD): score held-out positives against an equal
number of random non-edges and report ROC AUC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple, Union

import numpy as np

from repro.errors import EvaluationError
from repro.eval.metrics import auc_score, ranking_positions, ranking_report
from repro.graph.builders import from_edges
from repro.graph.compression import CompressedGraph
from repro.graph.csr import CSRGraph
from repro.utils.rng import SeedLike, ensure_rng

GraphLike = Union[CSRGraph, CompressedGraph]


@dataclass(frozen=True)
class LinkPredictionResult:
    """Ranking metrics over the held-out positives."""

    mean_rank: float
    mrr: float
    hits: Dict[int, float]
    num_positives: int
    num_negatives: int

    def as_row(self) -> dict:
        """Table-friendly dict view."""
        row = {"MR": round(self.mean_rank, 2), "MRR": round(self.mrr, 4)}
        for k, v in sorted(self.hits.items()):
            row[f"HITS@{k}"] = round(v, 4)
        return row


def train_test_split_edges(
    graph: GraphLike,
    test_fraction: float,
    seed: SeedLike = None,
    *,
    min_test: int = 1,
) -> Tuple[CSRGraph, np.ndarray, np.ndarray]:
    """Randomly exclude ``test_fraction`` of edges for evaluation (PBG setup).

    Returns ``(train_graph, test_sources, test_targets)``.  The paper uses
    minuscule fractions (0.00001%) on the very large graphs; we guard with
    ``min_test`` so scaled-down runs still get a non-empty test set.
    """
    if not 0.0 < test_fraction < 1.0:
        raise EvaluationError(
            f"test_fraction must be in (0, 1), got {test_fraction}"
        )
    if isinstance(graph, CompressedGraph):
        graph = graph.decompress()
    rng = ensure_rng(seed)
    src, dst = graph.edge_endpoints()
    mask = src < dst
    src, dst = src[mask], dst[mask]
    wts = graph.weights[mask] if graph.weights is not None else None
    m = src.size
    if m < 2:
        raise EvaluationError("graph too small to split")
    test_size = min(m - 1, max(min_test, int(round(test_fraction * m))))
    test_idx = rng.choice(m, size=test_size, replace=False)
    keep = np.ones(m, dtype=bool)
    keep[test_idx] = False
    train = from_edges(
        src[keep],
        dst[keep],
        wts[keep] if wts is not None else None,
        num_vertices=graph.num_vertices,
        symmetrize=True,
    )
    return train, src[test_idx], dst[test_idx]


def evaluate_link_prediction(
    embeddings: np.ndarray,
    test_sources: np.ndarray,
    test_targets: np.ndarray,
    *,
    num_negatives: int = 100,
    ks: Sequence[int] = (1, 10, 50),
    seed: SeedLike = None,
) -> LinkPredictionResult:
    """Rank each positive against ``num_negatives`` corrupted tails.

    Corruption replaces the target endpoint with a uniform random vertex
    (PBG's default negative sampler).
    """
    embeddings = np.asarray(embeddings, dtype=np.float64)
    test_sources = np.asarray(test_sources, dtype=np.int64)
    test_targets = np.asarray(test_targets, dtype=np.int64)
    if test_sources.size == 0:
        raise EvaluationError("empty test set")
    if test_sources.shape != test_targets.shape:
        raise EvaluationError("test_sources/test_targets must be parallel")
    if num_negatives < 1:
        raise EvaluationError(f"num_negatives must be >= 1, got {num_negatives}")
    n = embeddings.shape[0]
    rng = ensure_rng(seed)

    positive = np.einsum(
        "ij,ij->i", embeddings[test_sources], embeddings[test_targets]
    )
    corrupted = rng.integers(0, n, size=(test_sources.size, num_negatives))
    negative = np.einsum(
        "ij,ikj->ik", embeddings[test_sources], embeddings[corrupted]
    )
    ranks = ranking_positions(positive, negative)
    report = ranking_report(ranks, ks)
    return LinkPredictionResult(
        mean_rank=report["MR"],
        mrr=report["MRR"],
        hits={k: report[f"HITS@{k}"] for k in ks},
        num_positives=test_sources.size,
        num_negatives=num_negatives,
    )


def sample_non_edges(
    graph: GraphLike, count: int, seed: SeedLike = None, *, max_tries: int = 50
) -> Tuple[np.ndarray, np.ndarray]:
    """Rejection-sample ``count`` vertex pairs that are not edges (u != v)."""
    if count < 1:
        raise EvaluationError(f"count must be >= 1, got {count}")
    if isinstance(graph, CompressedGraph):
        graph = graph.decompress()
    rng = ensure_rng(seed)
    n = graph.num_vertices
    out_u = np.empty(count, dtype=np.int64)
    out_v = np.empty(count, dtype=np.int64)
    filled = 0
    for _ in range(max_tries):
        need = count - filled
        if need == 0:
            break
        u = rng.integers(0, n, size=2 * need)
        v = rng.integers(0, n, size=2 * need)
        ok = u != v
        u, v = u[ok], v[ok]
        is_edge = np.fromiter(
            (graph.has_edge(int(a), int(b)) for a, b in zip(u, v)),
            dtype=bool,
            count=u.size,
        )
        u, v = u[~is_edge], v[~is_edge]
        take = min(need, u.size)
        out_u[filled : filled + take] = u[:take]
        out_v[filled : filled + take] = v[:take]
        filled += take
    if filled < count:
        raise EvaluationError("could not sample enough non-edges (graph too dense?)")
    return out_u, out_v


def link_prediction_auc(
    embeddings: np.ndarray,
    graph: GraphLike,
    test_sources: np.ndarray,
    test_targets: np.ndarray,
    seed: SeedLike = None,
) -> float:
    """GraphVite's AUC protocol: positives vs an equal number of non-edges."""
    rng = ensure_rng(seed)
    neg_u, neg_v = sample_non_edges(graph, len(test_sources), rng)
    pos = np.einsum("ij,ij->i", embeddings[test_sources], embeddings[test_targets])
    neg = np.einsum("ij,ij->i", embeddings[neg_u], embeddings[neg_v])
    labels = np.concatenate([np.ones(pos.size, bool), np.zeros(neg.size, bool)])
    return auc_score(labels, np.concatenate([pos, neg]))
