"""Node-classification evaluation (DeepWalk/NetMF protocol, paper §5.1).

Given embeddings and a boolean label matrix: sample a training fraction,
train one-vs-rest logistic regression, predict top-``k`` labels on the rest
(``k`` = true label count per node), report Micro/Macro F1 averaged over
repeats.  The paper reports label ratios from 0.001% (OAG) to 90%
(BlogCatalog).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import EvaluationError
from repro.eval.logistic import LogisticRegressionOVR
from repro.eval.metrics import f1_scores
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class NodeClassificationResult:
    """Micro/Macro F1 (mean ± std over repeats) at one training ratio."""

    train_ratio: float
    micro_f1: float
    macro_f1: float
    repeats: int
    micro_std: float = 0.0
    macro_std: float = 0.0

    def as_row(self) -> dict:
        """Table-friendly dict view (percentages, like the paper)."""
        return {
            "ratio": self.train_ratio,
            "micro": round(100.0 * self.micro_f1, 2),
            "macro": round(100.0 * self.macro_f1, 2),
            "micro_std": round(100.0 * self.micro_std, 2),
        }


def _split_indices(
    num_samples: int,
    train_ratio: float,
    rng: np.random.Generator,
    *,
    min_train: int = 2,
) -> tuple:
    """Random train/test split with a floor on the training-set size."""
    train_size = max(min_train, int(round(train_ratio * num_samples)))
    if train_size >= num_samples:
        raise EvaluationError(
            f"train_ratio {train_ratio} leaves no test samples (n={num_samples})"
        )
    permutation = rng.permutation(num_samples)
    return permutation[:train_size], permutation[train_size:]


def evaluate_node_classification(
    embeddings: np.ndarray,
    labels: np.ndarray,
    train_ratio: float,
    *,
    repeats: int = 3,
    regularization: float = 1.0,
    seed: SeedLike = None,
    normalize: bool = True,
) -> NodeClassificationResult:
    """Run the full protocol at one training ratio.

    Parameters
    ----------
    embeddings:
        ``(n, d)`` node vectors.
    labels:
        ``(n, L)`` boolean membership matrix; nodes without any label are
        excluded (they cannot be scored under the top-k protocol).
    train_ratio:
        Fraction of labeled nodes used for training (0 < ratio < 1).
    repeats:
        Independent random splits to average over.
    normalize:
        Row-L2 normalize the embeddings first (standard in the protocol).
    """
    embeddings = np.asarray(embeddings, dtype=np.float64)
    labels = np.asarray(labels).astype(bool)
    if embeddings.ndim != 2 or labels.ndim != 2:
        raise EvaluationError("embeddings and labels must be 2-D")
    if embeddings.shape[0] != labels.shape[0]:
        raise EvaluationError("embeddings and labels must have matching rows")
    if not 0.0 < train_ratio < 1.0:
        raise EvaluationError(f"train_ratio must be in (0, 1), got {train_ratio}")
    if repeats < 1:
        raise EvaluationError(f"repeats must be >= 1, got {repeats}")

    labeled = labels.any(axis=1)
    features = embeddings[labeled]
    target = labels[labeled]
    if features.shape[0] < 4:
        raise EvaluationError("need at least 4 labeled nodes")
    if normalize:
        norms = np.linalg.norm(features, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        features = features / norms

    rng = ensure_rng(seed)
    micros = []
    macros = []
    for _ in range(repeats):
        train_idx, test_idx = _split_indices(features.shape[0], train_ratio, rng)
        model = LogisticRegressionOVR(regularization=regularization)
        model.fit(features[train_idx], target[train_idx])
        counts = target[test_idx].sum(axis=1)
        predictions = model.predict_top_k(features[test_idx], counts)
        micro, macro = f1_scores(target[test_idx], predictions)
        micros.append(micro)
        macros.append(macro)
    return NodeClassificationResult(
        train_ratio=train_ratio,
        micro_f1=float(np.mean(micros)),
        macro_f1=float(np.mean(macros)),
        repeats=repeats,
        micro_std=float(np.std(micros)),
        macro_std=float(np.std(macros)),
    )


def sweep_training_ratios(
    embeddings: np.ndarray,
    labels: np.ndarray,
    ratios: Sequence[float],
    *,
    repeats: int = 3,
    seed: SeedLike = None,
) -> list:
    """Evaluate at several training ratios (Figure 4 / Table 4 sweeps)."""
    rng = ensure_rng(seed)
    return [
        evaluate_node_classification(
            embeddings, labels, ratio, repeats=repeats, seed=rng
        )
        for ratio in ratios
    ]
