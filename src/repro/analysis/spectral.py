r"""Exact spectral quantities for auditing sparsifier quality.

Everything here is dense / pseudo-inverse based and intended for small
graphs: the point is *verification* of the theory the paper leans on, not
scale.

* :func:`effective_resistances` — ``R_uv = (e_u - e_v)ᵀ L⁺ (e_u - e_v)``,
  the quantity Theorem 3.2 bounds by degrees;
* :func:`lovasz_resistance_bounds` — both sides of Lovász's inequality
  ``(1/2)(1/d_u + 1/d_v) ≤ R_uv ≤ (1/(1-λ₂))(1/d_u + 1/d_v)``;
* :func:`quadratic_form_ratio` / :func:`spectral_approximation_factor` —
  how far ``xᵀL_H x`` strays from ``xᵀL_G x`` over test directions /
  eigen-directions, i.e. the ε of an ε-spectral sparsifier.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.errors import EvaluationError
from repro.graph.compression import CompressedGraph
from repro.graph.csr import CSRGraph
from repro.graph.stats import spectral_gap

GraphLike = Union[CSRGraph, CompressedGraph]

DENSE_LIMIT = 2_000


def _flat(graph: GraphLike) -> CSRGraph:
    return graph.decompress() if isinstance(graph, CompressedGraph) else graph


def laplacian_matrix(graph: GraphLike) -> sp.csr_matrix:
    """Combinatorial Laplacian ``L = D - A`` (weighted)."""
    flat = _flat(graph)
    adjacency = flat.adjacency()
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    return (sp.diags(degrees) - adjacency).tocsr()


def effective_resistances(
    graph: GraphLike, sources: np.ndarray, targets: np.ndarray
) -> np.ndarray:
    """Exact effective resistances between the given vertex pairs.

    Requires a connected graph with at most ``DENSE_LIMIT`` vertices (uses
    the dense pseudo-inverse of ``L``).
    """
    flat = _flat(graph)
    n = flat.num_vertices
    if n > DENSE_LIMIT:
        raise EvaluationError(
            f"exact resistances limited to {DENSE_LIMIT} vertices"
        )
    sources = np.asarray(sources, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    if sources.shape != targets.shape:
        raise EvaluationError("sources/targets must be parallel")
    lap = laplacian_matrix(flat).toarray()
    pinv = np.linalg.pinv(lap, hermitian=True)
    diag = np.diag(pinv)
    return diag[sources] + diag[targets] - 2.0 * pinv[sources, targets]


def lovasz_resistance_bounds(
    graph: GraphLike, sources: np.ndarray, targets: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Theorem 3.2's lower and upper bounds for the given pairs.

    Returns ``(lower, upper)`` with
    ``lower = (1/2)(1/d_u + 1/d_v)`` and
    ``upper = (1/(1-λ₂))(1/d_u + 1/d_v)``.
    """
    flat = _flat(graph)
    degrees = flat.weighted_degrees()
    sources = np.asarray(sources, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    if np.any(degrees[sources] <= 0) or np.any(degrees[targets] <= 0):
        raise EvaluationError("bounds need positive endpoint degrees")
    base = 1.0 / degrees[sources] + 1.0 / degrees[targets]
    gap = spectral_gap(flat)
    if gap <= 0:
        raise EvaluationError("upper bound needs a positive spectral gap")
    return 0.5 * base, base / gap


def quadratic_form_ratio(
    original: GraphLike,
    sparsifier_laplacian: sp.spmatrix,
    directions: np.ndarray,
) -> np.ndarray:
    """``xᵀ L_H x / xᵀ L_G x`` for each column direction ``x``.

    Directions (columns of ``directions``) are projected off the all-ones
    kernel first; directions with negligible ``xᵀL_G x`` are skipped (nan).
    """
    flat = _flat(original)
    lap_g = laplacian_matrix(flat)
    directions = np.atleast_2d(np.asarray(directions, dtype=np.float64))
    if directions.shape[0] != flat.num_vertices:
        directions = directions.T
    if directions.shape[0] != flat.num_vertices:
        raise EvaluationError("directions must have n rows")
    centered = directions - directions.mean(axis=0, keepdims=True)
    ratios = np.full(centered.shape[1], np.nan)
    for j in range(centered.shape[1]):
        x = centered[:, j]
        denominator = float(x @ (lap_g @ x))
        if denominator < 1e-12:
            continue
        ratios[j] = float(x @ (sparsifier_laplacian @ x)) / denominator
    return ratios


def exact_resistance_probabilities(
    graph: GraphLike, *, constant: Optional[float] = None
) -> np.ndarray:
    """Keep probabilities from *exact* effective resistances.

    The theoretically ideal sampler §3.2 mentions:
    ``p_e = min(1, C·A_uv·R_uv)`` — computing ``R_uv`` is the open problem
    the degree bound sidesteps.  Exact (pseudo-inverse) resistances make
    this feasible on small graphs, giving a gold standard the degree-based
    probabilities can be compared against (see
    ``tests/test_analysis_spectral.py::TestExactVsDegreeSampling``).
    Returned in the same ``u < v`` edge order as
    :func:`repro.sparsifier.downsampling.graph_downsampling_probabilities`.
    """
    from repro.sparsifier.downsampling import default_constant

    flat = _flat(graph)
    src, dst = flat.edge_endpoints()
    mask = src < dst
    src, dst = src[mask], dst[mask]
    weights = flat.weights[mask] if flat.weights is not None else np.ones(src.size)
    if constant is None:
        constant = default_constant(flat.num_vertices)
    resistances = effective_resistances(flat, src, dst)
    return np.minimum(1.0, constant * weights * resistances)


def spectral_approximation_factor(
    original: GraphLike,
    sparsifier_laplacian: sp.spmatrix,
    *,
    num_directions: int = 32,
    seed: int = 0,
) -> float:
    """Worst observed ``max(r, 1/r) - 1`` over random + eigen directions.

    A value ``ε`` certifies the sparsifier behaved like a ``(1±ε)``-spectral
    approximation on the tested directions (a lower bound on the true ε).
    """
    flat = _flat(original)
    n = flat.num_vertices
    rng = np.random.default_rng(seed)
    directions = [rng.standard_normal((n, num_directions))]
    if n <= DENSE_LIMIT:
        # Add the true eigen-directions of L_G — the adversarial ones.
        lap = laplacian_matrix(flat).toarray()
        _, vecs = np.linalg.eigh(lap)
        directions.append(vecs[:, 1 : min(n, 1 + num_directions)])
    stacked = np.hstack(directions)
    ratios = quadratic_form_ratio(flat, sparsifier_laplacian, stacked)
    ratios = ratios[np.isfinite(ratios) & (ratios > 0)]
    if ratios.size == 0:
        raise EvaluationError("no testable directions (graph disconnected?)")
    worst = np.maximum(ratios, 1.0 / ratios).max()
    return float(worst - 1.0)
