"""Spectral-sparsification analysis tools (the theory behind §3.2).

Quantifies how well a sparsifier approximates the original graph: exact
effective resistances (Thm 3.2's quantity), Laplacian quadratic-form ratios
(the ε in "ε-spectral approximation"), and the degree-bound check of
Lovász's inequality.  Used by the property tests and available to users who
want to audit their own sparsifier quality.
"""

from repro.analysis.spectral import (
    effective_resistances,
    exact_resistance_probabilities,
    laplacian_matrix,
    lovasz_resistance_bounds,
    quadratic_form_ratio,
    spectral_approximation_factor,
)

__all__ = [
    "effective_resistances",
    "exact_resistance_probabilities",
    "laplacian_matrix",
    "lovasz_resistance_bounds",
    "quadratic_form_ratio",
    "spectral_approximation_factor",
]
