"""Dataset registry: scaled-down synthetic analogs of the paper's Table 3."""

from repro.datasets.registry import (
    DATASETS,
    DatasetSpec,
    LabeledGraph,
    dataset_names,
    load_dataset,
)

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "LabeledGraph",
    "dataset_names",
    "load_dataset",
]
