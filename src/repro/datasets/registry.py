"""Synthetic analogs of the paper's nine datasets (Table 3).

The originals range from BlogCatalog (10k vertices) to Hyperlink2014
(1.7B vertices, 124B edges) — unavailable or unusable at laptop scale.  Each
registry entry generates a degree-corrected SBM (labeled, for the node
classification tasks) or an R-MAT graph (unlabeled, for the link-prediction
web crawls), with vertex counts shrunk to run in seconds while preserving:

* the *relative* size ordering (small ≪ large ≪ very large);
* density (mean degree) ratios roughly matching the original graphs;
* multi-label community structure where the task requires it;
* power-law degree distributions throughout.

Scale factors are documented per entry and re-printed by benchmark E10
(Table 3 reproduction).  Generation is deterministic for a given ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.graph.csr import CSRGraph
from repro.graph.generators import dcsbm_graph, rmat_graph
from repro.utils.rng import SeedLike


@dataclass
class LabeledGraph:
    """A graph plus (optional) multi-label node annotations."""

    name: str
    graph: CSRGraph
    labels: Optional[np.ndarray]  # (n, L) boolean, or None

    @property
    def has_labels(self) -> bool:
        """True for classification datasets."""
        return self.labels is not None


@dataclass(frozen=True)
class DatasetSpec:
    """Registry entry: generator plus provenance metadata.

    ``original_vertices`` / ``original_edges`` record the real dataset's size
    from Table 3 of the paper, so scale factors can be reported.
    """

    name: str
    group: str  # "small" | "large" | "very_large"
    original_vertices: int
    original_edges: int
    task: str  # "classification" | "link_prediction"
    builder: Callable[[SeedLike], Tuple[CSRGraph, Optional[np.ndarray]]]

    def load(self, seed: SeedLike = 0) -> LabeledGraph:
        """Generate the synthetic analog."""
        graph, labels = self.builder(seed)
        return LabeledGraph(name=self.name, graph=graph, labels=labels)

    def scale_factor(self, generated_vertices: int) -> float:
        """How many times smaller than the original this analog is."""
        return self.original_vertices / max(1, generated_vertices)


def _classification(n, communities, degree, mixing, labels_per_node=2):
    def build(seed: SeedLike):
        graph, labels = dcsbm_graph(
            n,
            communities,
            avg_degree=degree,
            mixing=mixing,
            labels_per_node=labels_per_node,
            seed=seed,
        )
        return graph, labels

    return build


def _web_crawl(scale, edge_factor):
    def build(seed: SeedLike):
        return rmat_graph(scale, edge_factor, seed=seed), None

    return build


DATASETS: Dict[str, DatasetSpec] = {
    # ---- small graphs (paper §5.4) ------------------------------------
    "blogcatalog_like": DatasetSpec(
        name="blogcatalog_like",
        group="small",
        original_vertices=10_312,
        original_edges=333_983,
        task="classification",
        builder=_classification(600, 12, 22.0, 0.25, labels_per_node=2),
    ),
    "youtube_like": DatasetSpec(
        name="youtube_like",
        group="small",
        original_vertices=1_138_499,
        original_edges=2_990_443,
        task="classification",
        builder=_classification(2_000, 20, 6.0, 0.2, labels_per_node=2),
    ),
    # ---- large graphs (paper §5.2) ------------------------------------
    "livejournal_like": DatasetSpec(
        name="livejournal_like",
        group="large",
        original_vertices=4_847_571,
        original_edges=68_993_773,
        task="link_prediction",
        builder=_classification(3_000, 30, 18.0, 0.1),
    ),
    "friendster_small_like": DatasetSpec(
        name="friendster_small_like",
        group="large",
        original_vertices=7_944_949,
        original_edges=447_219_610,
        task="classification",
        builder=_classification(2_500, 15, 30.0, 0.15),
    ),
    "hyperlink_pld_like": DatasetSpec(
        name="hyperlink_pld_like",
        group="large",
        original_vertices=39_497_204,
        original_edges=623_056_313,
        task="link_prediction",
        builder=_web_crawl(12, 8),
    ),
    "friendster_like": DatasetSpec(
        name="friendster_like",
        group="large",
        original_vertices=65_608_376,
        original_edges=1_806_067_142,
        task="classification",
        builder=_classification(4_000, 20, 32.0, 0.15),
    ),
    "oag_like": DatasetSpec(
        name="oag_like",
        group="large",
        original_vertices=67_768_244,
        original_edges=895_368_962,
        task="classification",
        builder=_classification(4_000, 25, 14.0, 0.2, labels_per_node=2),
    ),
    # ---- very large graphs (paper §5.3) --------------------------------
    "clueweb_like": DatasetSpec(
        name="clueweb_like",
        group="very_large",
        original_vertices=978_408_098,
        original_edges=74_744_358_622,
        task="link_prediction",
        builder=_web_crawl(13, 12),
    ),
    "hyperlink2014_like": DatasetSpec(
        name="hyperlink2014_like",
        group="very_large",
        original_vertices=1_724_573_718,
        original_edges=124_141_874_032,
        task="link_prediction",
        builder=_web_crawl(14, 10),
    ),
}


def dataset_names() -> list:
    """Registered dataset names, Table-3 order."""
    return list(DATASETS)


def load_dataset(name: str, seed: SeedLike = 0) -> LabeledGraph:
    """Generate the named analog; raises :class:`DatasetError` if unknown."""
    try:
        spec = DATASETS[name]
    except KeyError:
        known = ", ".join(DATASETS)
        raise DatasetError(f"unknown dataset {name!r}; choose one of: {known}") from None
    return spec.load(seed)
