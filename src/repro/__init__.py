"""repro — a Python reproduction of LightNE (SIGMOD 2021).

LightNE is a lightweight, CPU-only network-embedding system combining
NetSMF's sampled sparsification of the DeepWalk matrix (with a new
degree-based edge-downsampling step) and ProNE's Chebyshev spectral
propagation, on top of a compressed parallel graph-processing substrate.

Quickstart
----------
>>> from repro import dcsbm_graph, lightne_embedding, LightNEParams
>>> graph, labels = dcsbm_graph(500, 5, avg_degree=12, seed=0)
>>> result = lightne_embedding(graph, LightNEParams(dimension=32), seed=0)
>>> result.vectors.shape
(500, 32)
"""

from repro.errors import (
    CompressionError,
    DatasetError,
    EvaluationError,
    FactorizationError,
    GraphConstructionError,
    GraphFormatError,
    HashTableFullError,
    MethodParameterError,
    ReproError,
    SamplingError,
    UnknownMethodError,
)
from repro.graph import (
    CSRGraph,
    CompressedGraph,
    barabasi_albert_graph,
    compress_graph,
    dcsbm_graph,
    erdos_renyi_graph,
    from_edges,
    from_scipy,
    rmat_graph,
    to_scipy,
)
from repro.embedding import (
    DeepWalkSGDParams,
    EmbeddingResult,
    GraRepParams,
    HOPEParams,
    LINEParams,
    LightNEParams,
    MethodSpec,
    NRPParams,
    NetMFParams,
    NetSMFParams,
    Node2VecParams,
    PBGParams,
    ProNEParams,
    deepwalk_sgd_embedding,
    get_method,
    grarep_embedding,
    hope_embedding,
    lightne_embedding,
    line_embedding,
    list_methods,
    make_params,
    method_names,
    netmf_embedding,
    netsmf_embedding,
    node2vec_embedding,
    nrp_embedding,
    pbg_embedding,
    prone_embedding,
    run_method,
)
from repro.streaming import DynamicEmbedder, RefreshPolicy, edge_stream_from_graph
from repro.eval import (
    evaluate_link_prediction,
    evaluate_node_classification,
    link_prediction_auc,
    train_test_split_edges,
)
from repro.datasets import load_dataset, dataset_names
from repro.systems import estimate_cost
from repro import telemetry

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "GraphFormatError",
    "GraphConstructionError",
    "CompressionError",
    "SamplingError",
    "HashTableFullError",
    "FactorizationError",
    "EvaluationError",
    "DatasetError",
    "UnknownMethodError",
    "MethodParameterError",
    # graphs
    "CSRGraph",
    "CompressedGraph",
    "compress_graph",
    "from_edges",
    "from_scipy",
    "to_scipy",
    "dcsbm_graph",
    "rmat_graph",
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    # embeddings
    "EmbeddingResult",
    "LightNEParams",
    "lightne_embedding",
    "NetSMFParams",
    "netsmf_embedding",
    "ProNEParams",
    "prone_embedding",
    "NetMFParams",
    "netmf_embedding",
    "LINEParams",
    "line_embedding",
    "DeepWalkSGDParams",
    "deepwalk_sgd_embedding",
    "PBGParams",
    "pbg_embedding",
    "NRPParams",
    "nrp_embedding",
    "Node2VecParams",
    "node2vec_embedding",
    "GraRepParams",
    "grarep_embedding",
    "HOPEParams",
    "hope_embedding",
    # method registry
    "MethodSpec",
    "get_method",
    "list_methods",
    "make_params",
    "method_names",
    "run_method",
    # streaming (paper §6 future work)
    "DynamicEmbedder",
    "RefreshPolicy",
    "edge_stream_from_graph",
    # evaluation
    "evaluate_node_classification",
    "evaluate_link_prediction",
    "link_prediction_auc",
    "train_test_split_edges",
    # datasets & systems
    "load_dataset",
    "dataset_names",
    "estimate_cost",
    # observability
    "telemetry",
]
