"""Experiment harness: programmatic regeneration of the paper's tables.

The benchmarks under ``benchmarks/`` are thin pytest wrappers around this
subpackage; users can run the same comparisons from their own code:

>>> from repro.experiments import run_method_comparison
>>> rows = run_method_comparison("oag_like", ["prone+", "lightne"],
...                              ratios=(0.1,), dimension=16, window=3,
...                              multiplier=1.0)   # doctest: +SKIP
"""

from repro.experiments.runner import (
    format_table,
    run_link_prediction_comparison,
    run_method_comparison,
    run_multiplier_sweep,
    run_stage_breakdown,
)

__all__ = [
    "format_table",
    "run_method_comparison",
    "run_link_prediction_comparison",
    "run_multiplier_sweep",
    "run_stage_breakdown",
]
