"""Reusable experiment runners behind the paper-table benchmarks.

Each runner loads a registered dataset analog (or accepts a prepared
graph/labels pair), runs one or more embedding methods, evaluates with the
paper's protocol, and returns plain list-of-dict rows that
:func:`format_table` renders as aligned text — the same rows the
``benchmarks/bench_e*.py`` files assert on and print.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.datasets import LabeledGraph, load_dataset
from repro.embedding.base import EmbeddingResult
from repro.embedding.registry import canonical_name, run_method
from repro.errors import EvaluationError
from repro.eval import (
    evaluate_link_prediction,
    evaluate_node_classification,
    train_test_split_edges,
)
from repro.systems.cost import SYSTEM_INSTANCE, estimate_cost

DEFAULT_SEED = 2021

Row = Dict[str, object]


def dispatch_method(
    method: str,
    graph,
    *,
    dimension: int = 32,
    window: int = 5,
    multiplier: float = 1.0,
    propagate: bool = True,
    downsample: bool = True,
    workers: Optional[int] = None,
    precision: Optional[str] = None,
    sparsifier: Optional[str] = None,
    factorizer: Optional[str] = None,
    seed: int = DEFAULT_SEED,
) -> EmbeddingResult:
    """Run one named method with the harness-level knobs.

    Any name or alias in :mod:`repro.embedding.registry` is accepted (the
    paper tables' spellings ``prone+`` and ``graphvite`` are registered
    aliases).  The knob set is shared across methods, so knobs a method does
    not support are dropped (``strict=False``); unknown method names raise
    :class:`repro.errors.UnknownMethodError`.  ``sparsifier`` selects the
    count-matrix backend (``"path"``/``"ppr"``) on the methods that expose
    it (lightne, sketchne, netsmf); ``factorizer`` the factorization backend
    (``"rsvd"``/``"single_pass"``) on the methods that call the shared
    factorize dispatcher.
    """
    return run_method(
        method,
        graph,
        seed=seed,
        strict=False,
        dimension=dimension,
        window=window,
        multiplier=multiplier,
        propagate=propagate,
        downsample=downsample,
        workers=workers,
        precision=precision,
        sparsifier=sparsifier,
        factorizer=factorizer,
    )


def _resolve(dataset: Union[str, LabeledGraph], seed: int) -> LabeledGraph:
    from repro.telemetry import ledger

    if isinstance(dataset, LabeledGraph):
        ledger.set_dataset(dataset.name)
        return dataset
    bundle = load_dataset(dataset, seed=seed)
    ledger.set_dataset(bundle.name)
    return bundle


def _cost(method: str, seconds: float) -> float:
    key = method.lower()
    if key not in SYSTEM_INSTANCE:
        key = canonical_name(method)
    return round(estimate_cost(key, seconds), 6)


def run_method_comparison(
    dataset: Union[str, LabeledGraph],
    methods: Sequence[str],
    *,
    ratios: Sequence[float] = (0.1,),
    dimension: int = 32,
    window: int = 5,
    multiplier: float = 1.0,
    repeats: int = 2,
    workers: Optional[int] = None,
    seed: int = DEFAULT_SEED,
) -> List[Row]:
    """Node-classification comparison (the Table 4 / Figure 4 shape).

    One row per method: time, cost, and Micro-F1 (percent) per ratio.
    """
    bundle = _resolve(dataset, seed)
    if bundle.labels is None:
        raise EvaluationError(f"dataset {bundle.name!r} has no labels")
    rows: List[Row] = []
    for method in methods:
        result = dispatch_method(
            method, bundle.graph, dimension=dimension, window=window,
            multiplier=multiplier, workers=workers, seed=seed,
        )
        row: Row = {
            "method": method,
            "time_s": round(result.total_seconds, 3),
            "cost_$": _cost(method, result.total_seconds),
        }
        for ratio in ratios:
            score = evaluate_node_classification(
                result.vectors, bundle.labels, ratio, repeats=repeats, seed=seed
            )
            row[f"micro@{ratio:g}"] = round(100 * score.micro_f1, 2)
            row[f"macro@{ratio:g}"] = round(100 * score.macro_f1, 2)
        rows.append(row)
    return rows


def run_link_prediction_comparison(
    dataset: Union[str, LabeledGraph],
    methods: Sequence[str],
    *,
    dimension: int = 32,
    window: int = 5,
    multiplier: float = 2.0,
    test_fraction: float = 0.02,
    num_negatives: int = 100,
    workers: Optional[int] = None,
    seed: int = DEFAULT_SEED,
) -> List[Row]:
    """PBG-protocol comparison (the §5.2.1 table shape)."""
    bundle = _resolve(dataset, seed)
    train, pos_u, pos_v = train_test_split_edges(
        bundle.graph, test_fraction, seed=seed
    )
    rows: List[Row] = []
    for method in methods:
        result = dispatch_method(
            method, train, dimension=dimension, window=window,
            multiplier=multiplier, workers=workers, seed=seed,
        )
        metrics = evaluate_link_prediction(
            result.vectors, pos_u, pos_v, num_negatives=num_negatives,
            ks=(1, 10, 50), seed=seed,
        )
        rows.append(
            {
                "method": method,
                "time_s": round(result.total_seconds, 3),
                "cost_$": _cost(method, result.total_seconds),
                "MR": round(metrics.mean_rank, 2),
                "MRR": round(metrics.mrr, 3),
                "HITS@10": round(metrics.hits[10], 3),
            }
        )
    return rows


def run_multiplier_sweep(
    dataset: Union[str, LabeledGraph],
    multipliers: Sequence[float],
    *,
    ratio: float = 0.1,
    dimension: int = 32,
    window: int = 10,
    repeats: int = 2,
    seed: int = DEFAULT_SEED,
) -> List[Row]:
    """The Figure-2 sweep: LightNE quality/time as M grows."""
    bundle = _resolve(dataset, seed)
    if bundle.labels is None:
        raise EvaluationError(f"dataset {bundle.name!r} has no labels")
    rows: List[Row] = []
    for multiplier in multipliers:
        result = dispatch_method(
            "lightne", bundle.graph, dimension=dimension, window=window,
            multiplier=multiplier, seed=seed,
        )
        score = evaluate_node_classification(
            result.vectors, bundle.labels, ratio, repeats=repeats, seed=seed
        )
        rows.append(
            {
                "M": f"{multiplier:g}Tm",
                "time_s": round(result.total_seconds, 3),
                "nnz": result.info["sparsifier_nnz"],
                f"micro@{ratio:g}": round(100 * score.micro_f1, 2),
            }
        )
    return rows


def run_stage_breakdown(
    dataset: Union[str, LabeledGraph],
    configs: Sequence[tuple],
    *,
    dimension: int = 32,
    window: int = 10,
    seed: int = DEFAULT_SEED,
) -> List[Row]:
    """The Table-5 shape: per-stage seconds per (name, method, multiplier)."""
    bundle = _resolve(dataset, seed)
    rows: List[Row] = []
    for name, method, multiplier in configs:
        result = dispatch_method(
            method, bundle.graph, dimension=dimension, window=window,
            multiplier=multiplier if multiplier is not None else 1.0, seed=seed,
        )
        stages = result.timer.stages
        rows.append(
            {
                "method": name,
                "sparsifier_s": round(stages["sparsifier"], 3)
                if "sparsifier" in stages else None,
                "svd_s": round(stages.get("svd", 0.0), 3),
                "propagation_s": round(stages["propagation"], 3)
                if "propagation" in stages else None,
                "total_s": round(result.total_seconds, 3),
            }
        )
    return rows


def format_table(rows: Sequence[Row]) -> str:
    """Render rows as an aligned text table (column order from row 0)."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())

    def fmt(value) -> str:
        if value is None:
            return "NA"
        if isinstance(value, (float, np.floating)):
            return f"{value:.4g}"
        return str(value)

    widths = {c: max(len(str(c)), *(len(fmt(r.get(c))) for r in rows)) for c in columns}
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    rule = "-" * len(header)
    body = "\n".join(
        "  ".join(fmt(r.get(c)).ljust(widths[c]) for c in columns) for r in rows
    )
    return f"{header}\n{rule}\n{body}"
