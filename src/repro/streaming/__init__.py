"""Streaming / dynamic network embedding (paper §6 future work).

The paper closes with: "We also would like to study large-scale network
embedding in a streaming or dynamic setting."  This subpackage prototypes
that direction on top of the existing pipeline: batched edge arrivals and
deletions (:class:`EdgeBatch`, :func:`edge_stream_from_graph`), and a
:class:`DynamicEmbedder` that maintains a current embedding, re-runs LightNE
when a staleness policy triggers, and keeps the coordinate frame stable
across refreshes with a Procrustes alignment.
"""

from repro.streaming.stream import EdgeBatch, edge_stream_from_graph
from repro.streaming.dynamic import DynamicEmbedder, RefreshPolicy

__all__ = [
    "EdgeBatch",
    "edge_stream_from_graph",
    "DynamicEmbedder",
    "RefreshPolicy",
]
