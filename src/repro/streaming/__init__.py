"""Streaming / dynamic network embedding (paper §6 future work).

The paper closes with: "We also would like to study large-scale network
embedding in a streaming or dynamic setting."  This subpackage prototypes
that direction on top of the existing pipeline: batched edge arrivals and
deletions (:class:`EdgeBatch`, :func:`edge_stream_from_graph`), and a
:class:`DynamicEmbedder` that maintains a current embedding, re-runs the
configured registry method (full params forwarded — sparsifier backend
included) when a staleness policy triggers, and keeps the coordinate frame
stable across refreshes with a Procrustes alignment.  The temporal workload
(:func:`temporal_edge_stream`, :func:`replay_temporal_link_prediction`)
replays timestamped edge batches and scores each refresh epoch with the
link-prediction protocol, recording per-epoch quality in the run ledger.
"""

from repro.streaming.stream import EdgeBatch, edge_stream_from_graph
from repro.streaming.dynamic import DynamicEmbedder, RefreshPolicy
from repro.streaming.temporal import (
    replay_temporal_link_prediction,
    temporal_edge_stream,
)

__all__ = [
    "EdgeBatch",
    "edge_stream_from_graph",
    "DynamicEmbedder",
    "RefreshPolicy",
    "temporal_edge_stream",
    "replay_temporal_link_prediction",
]
