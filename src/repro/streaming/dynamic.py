"""A dynamic embedder: apply update batches, refresh when stale.

Models the industrial loop the paper's introduction motivates (Alibaba /
LinkedIn re-embedding their graphs "every few hours"): updates accumulate,
and when the staleness policy fires the graph is re-embedded with LightNE.
Consecutive embeddings are aligned with an orthogonal Procrustes rotation so
downstream consumers (ANN indexes, rankers) see a stable coordinate frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.embedding.base import EmbeddingResult
from repro.embedding.lightne import LightNEParams, lightne_embedding
from repro.errors import GraphConstructionError
from repro.graph.csr import CSRGraph
from repro.graph.transforms import add_edges, remove_edges
from repro.streaming.stream import EdgeBatch
from repro.utils.rng import SeedLike, derive_seed


@dataclass(frozen=True)
class RefreshPolicy:
    """When to re-embed.

    Attributes
    ----------
    max_pending_fraction:
        Refresh once pending updates exceed this fraction of current edges.
    max_pending_updates:
        Absolute cap on buffered updates (whichever triggers first).
    """

    max_pending_fraction: float = 0.1
    max_pending_updates: int = 1_000_000

    def should_refresh(self, pending: int, current_edges: int) -> bool:
        """Policy decision given buffered-update and edge counts."""
        if pending <= 0:
            return False
        if pending >= self.max_pending_updates:
            return True
        return pending >= self.max_pending_fraction * max(1, current_edges)


class DynamicEmbedder:
    """Maintains a graph and its LightNE embedding under streaming updates.

    Parameters
    ----------
    graph:
        Initial graph.
    params:
        LightNE configuration reused at every refresh.
    policy:
        Staleness policy; ``None`` means refresh on every batch.
    seed:
        Base seed; refresh ``k`` derives an independent stream from it.
    """

    def __init__(
        self,
        graph: CSRGraph,
        params: LightNEParams = LightNEParams(),
        *,
        policy: Optional[RefreshPolicy] = None,
        seed: Optional[int] = 0,
    ) -> None:
        self.graph = graph
        self.params = params
        self.policy = policy if policy is not None else RefreshPolicy(0.0, 1)
        self.seed = seed
        self.pending_updates = 0
        self.refresh_count = 0
        self.drift_history: List[float] = []
        self._result = lightne_embedding(
            graph, params, derive_seed(seed, 0) if seed is not None else None
        )

    # ---------------------------------------------------------------- state
    @property
    def vectors(self) -> np.ndarray:
        """The current (possibly slightly stale) embedding."""
        return self._result.vectors

    @property
    def result(self) -> EmbeddingResult:
        """Full result object of the latest refresh."""
        return self._result

    @property
    def is_stale(self) -> bool:
        """True when buffered updates have not yet been embedded."""
        return self.pending_updates > 0

    # --------------------------------------------------------------- updates
    def apply(self, batch: EdgeBatch) -> bool:
        """Apply one update batch; refresh if the policy fires.

        Returns ``True`` when a refresh happened.
        """
        if batch.num_removals:
            self.graph = remove_edges(
                self.graph, batch.remove_sources, batch.remove_targets
            )
        if batch.num_additions:
            self.graph = add_edges(self.graph, batch.add_sources, batch.add_targets)
        self.pending_updates += batch.size
        if self.policy.should_refresh(self.pending_updates, self.graph.num_edges):
            self.refresh()
            return True
        return False

    def refresh(self) -> EmbeddingResult:
        """Re-embed now and align to the previous frame (Procrustes)."""
        self.refresh_count += 1
        seed = (
            derive_seed(self.seed, self.refresh_count)
            if self.seed is not None
            else None
        )
        new_result = lightne_embedding(self.graph, self.params, seed)
        aligned, drift = _procrustes_align(self._result.vectors, new_result.vectors)
        new_result.vectors = aligned
        new_result.info["aligned_to_previous"] = True
        new_result.info["drift"] = drift
        self.drift_history.append(drift)
        self._result = new_result
        self.pending_updates = 0
        return new_result


def _procrustes_align(
    previous: np.ndarray, current: np.ndarray
) -> tuple:
    """Rotate ``current`` onto ``previous`` over the shared vertex prefix.

    Returns ``(rotated_current, drift)`` where drift is the mean row-wise
    distance between the aligned frames on the shared prefix (0 = frozen).
    """
    shared = min(previous.shape[0], current.shape[0])
    if shared == 0 or previous.shape[1] != current.shape[1]:
        return current, float("nan")
    m = current[:shared].T @ previous[:shared]
    u, _, vt = np.linalg.svd(m)
    rotation = u @ vt
    rotated = current @ rotation
    scale = np.linalg.norm(previous[:shared], axis=1).mean() or 1.0
    drift = float(
        np.linalg.norm(rotated[:shared] - previous[:shared], axis=1).mean() / scale
    )
    return rotated, drift
