"""A dynamic embedder: apply update batches, refresh when stale.

Models the industrial loop the paper's introduction motivates (Alibaba /
LinkedIn re-embedding their graphs "every few hours"): updates accumulate,
and when the staleness policy fires the graph is re-embedded with the
configured registry method (LightNE by default), reusing the *full* params —
sparsifier backend, substrate and worker knobs included.
Consecutive embeddings are aligned with an orthogonal Procrustes rotation so
downstream consumers (ANN indexes, rankers) see a stable coordinate frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.embedding.base import EmbeddingResult
from repro.embedding.lightne import LightNEParams
from repro.errors import GraphConstructionError
from repro.graph.csr import CSRGraph
from repro.graph.transforms import add_edges, remove_edges
from repro.streaming.stream import EdgeBatch
from repro.utils.rng import SeedLike, derive_seed


@dataclass(frozen=True)
class RefreshPolicy:
    """When to re-embed.

    Attributes
    ----------
    max_pending_fraction:
        Refresh once pending updates exceed this fraction of current edges.
    max_pending_updates:
        Absolute cap on buffered updates (whichever triggers first).
    """

    max_pending_fraction: float = 0.1
    max_pending_updates: int = 1_000_000

    def should_refresh(self, pending: int, current_edges: int) -> bool:
        """Policy decision given buffered-update and edge counts."""
        if pending <= 0:
            return False
        if pending >= self.max_pending_updates:
            return True
        return pending >= self.max_pending_fraction * max(1, current_edges)


class DynamicEmbedder:
    """Maintains a graph and its embedding under streaming updates.

    Parameters
    ----------
    graph:
        Initial graph.
    params:
        Full method configuration, *forwarded verbatim at every refresh* —
        including the sparsifier backend, execution substrate and worker
        knobs (historically refreshes silently fell back to default
        params).  ``None`` uses the method's dataclass defaults.
    method:
        Any registered embedding method name or alias (default
        ``"lightne"``); resolved through
        :mod:`repro.embedding.registry`, so temporal replays can exercise
        e.g. ``netsmf`` or a ``sparsifier="ppr"`` configuration end to end.
    policy:
        Staleness policy; ``None`` means refresh on every batch.
    seed:
        Base seed; refresh ``k`` derives an independent stream from it.
    """

    def __init__(
        self,
        graph: CSRGraph,
        params: Optional[object] = None,
        *,
        method: str = "lightne",
        policy: Optional[RefreshPolicy] = None,
        seed: Optional[int] = 0,
    ) -> None:
        from repro.embedding.registry import get_method

        spec = get_method(method)
        if params is None:
            params = (
                LightNEParams() if spec.params_type is LightNEParams
                else spec.params_type()
            )
        elif not isinstance(params, spec.params_type):
            raise GraphConstructionError(
                f"params {type(params).__name__} does not match method "
                f"{spec.name!r} (expects {spec.params_type.__name__})"
            )
        self.graph = graph
        self.method = spec.name
        self.params = params
        self._builder = spec.builder
        self.policy = policy if policy is not None else RefreshPolicy(0.0, 1)
        self.seed = seed
        self.pending_updates = 0
        self.refresh_count = 0
        self.drift_history: List[float] = []
        self._result = self._builder(
            graph, params, derive_seed(seed, 0) if seed is not None else None
        )

    # ---------------------------------------------------------------- state
    @property
    def vectors(self) -> np.ndarray:
        """The current (possibly slightly stale) embedding."""
        return self._result.vectors

    @property
    def result(self) -> EmbeddingResult:
        """Full result object of the latest refresh."""
        return self._result

    @property
    def is_stale(self) -> bool:
        """True when buffered updates have not yet been embedded."""
        return self.pending_updates > 0

    # --------------------------------------------------------------- updates
    def apply(self, batch: EdgeBatch) -> bool:
        """Apply one update batch; refresh if the policy fires.

        Returns ``True`` when a refresh happened.
        """
        if batch.num_removals:
            self.graph = remove_edges(
                self.graph, batch.remove_sources, batch.remove_targets
            )
        if batch.num_additions:
            self.graph = add_edges(self.graph, batch.add_sources, batch.add_targets)
        self.pending_updates += batch.size
        if self.policy.should_refresh(self.pending_updates, self.graph.num_edges):
            self.refresh()
            return True
        return False

    def refresh(self) -> EmbeddingResult:
        """Re-embed with the *full* configured params and Procrustes-align."""
        self.refresh_count += 1
        seed = (
            derive_seed(self.seed, self.refresh_count)
            if self.seed is not None
            else None
        )
        new_result = self._builder(self.graph, self.params, seed)
        aligned, drift = _procrustes_align(self._result.vectors, new_result.vectors)
        new_result.vectors = aligned
        new_result.info["aligned_to_previous"] = True
        new_result.info["drift"] = drift
        self.drift_history.append(drift)
        self._result = new_result
        self.pending_updates = 0
        return new_result


def _procrustes_align(
    previous: np.ndarray, current: np.ndarray
) -> tuple:
    """Rotate ``current`` onto ``previous`` over the shared vertex prefix.

    Returns ``(rotated_current, drift)`` where drift is the mean row-wise
    distance between the aligned frames on the shared prefix (0 = frozen).
    """
    shared = min(previous.shape[0], current.shape[0])
    if shared == 0 or previous.shape[1] != current.shape[1]:
        return current, float("nan")
    m = current[:shared].T @ previous[:shared]
    u, _, vt = np.linalg.svd(m)
    rotation = u @ vt
    rotated = current @ rotation
    scale = np.linalg.norm(previous[:shared], axis=1).mean() or 1.0
    drift = float(
        np.linalg.norm(rotated[:shared] - previous[:shared], axis=1).mean() / scale
    )
    return rotated, drift
