"""Edge-stream primitives for the dynamic-embedding prototype."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from repro.errors import GraphConstructionError
from repro.graph.csr import CSRGraph
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class EdgeBatch:
    """One batch of graph updates: edges arriving and (optionally) leaving."""

    add_sources: np.ndarray
    add_targets: np.ndarray
    remove_sources: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    remove_targets: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )

    def __post_init__(self) -> None:
        if self.add_sources.shape != self.add_targets.shape:
            raise GraphConstructionError("add arrays must be parallel")
        if self.remove_sources.shape != self.remove_targets.shape:
            raise GraphConstructionError("remove arrays must be parallel")

    @property
    def num_additions(self) -> int:
        """Edges arriving in this batch."""
        return int(self.add_sources.size)

    @property
    def num_removals(self) -> int:
        """Edges leaving in this batch."""
        return int(self.remove_sources.size)

    @property
    def size(self) -> int:
        """Total update count."""
        return self.num_additions + self.num_removals


def edge_stream_from_graph(
    graph: CSRGraph,
    *,
    initial_fraction: float = 0.5,
    batches: int = 10,
    churn: float = 0.0,
    seed: SeedLike = None,
):
    """Replay a static graph as an edge stream (a standard evaluation trick).

    Splits the edge set into an initial graph (``initial_fraction`` of edges)
    plus ``batches`` arrival batches of the remainder.  With ``churn > 0``,
    each batch also deletes that fraction of the initial edges (chosen
    without replacement), exercising the removal path.

    Returns ``(initial_graph, iterator of EdgeBatch)``.
    """
    if not 0.0 < initial_fraction < 1.0:
        raise GraphConstructionError(
            f"initial_fraction must be in (0, 1), got {initial_fraction}"
        )
    if batches < 1:
        raise GraphConstructionError(f"batches must be >= 1, got {batches}")
    if not 0.0 <= churn < 1.0:
        raise GraphConstructionError(f"churn must be in [0, 1), got {churn}")
    rng = ensure_rng(seed)

    src, dst = graph.edge_endpoints()
    mask = src < dst
    src, dst = src[mask], dst[mask]
    m = src.size
    if m < 2:
        raise GraphConstructionError("graph too small to stream")
    order = rng.permutation(m)
    initial_count = max(1, int(round(initial_fraction * m)))
    initial_idx = order[:initial_count]
    arriving_idx = order[initial_count:]

    from repro.graph.builders import from_edges

    initial = from_edges(
        src[initial_idx], dst[initial_idx],
        num_vertices=graph.num_vertices, symmetrize=True,
    )

    removable = initial_idx.copy()
    rng.shuffle(removable)
    removed_so_far = 0

    def batches_iter() -> Iterator[EdgeBatch]:
        nonlocal removed_so_far
        chunks = np.array_split(arriving_idx, batches)
        per_batch_removals = int(round(churn * initial_count / batches))
        for chunk in chunks:
            rem_slice = removable[
                removed_so_far : removed_so_far + per_batch_removals
            ]
            removed_so_far += rem_slice.size
            yield EdgeBatch(
                add_sources=src[chunk].copy(),
                add_targets=dst[chunk].copy(),
                remove_sources=src[rem_slice].copy(),
                remove_targets=dst[rem_slice].copy(),
            )

    return initial, batches_iter()
