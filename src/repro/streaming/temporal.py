"""Temporal replay: timestamped edge batches scored per refresh epoch.

The paper's streaming discussion (§6) stops at "re-embed when stale"; this
module closes the loop into an evaluated temporal workload.  A timestamped
edge list is split chronologically into an initial graph plus ``epochs``
arrival batches (:func:`temporal_edge_stream`), and
:func:`replay_temporal_link_prediction` plays the batches through a
:class:`~repro.streaming.dynamic.DynamicEmbedder` with the *standard
temporal protocol*: each epoch's arriving edges are first scored as
link-prediction positives against the embedding trained on everything
earlier (:func:`repro.eval.link_prediction.evaluate_link_prediction`), then
applied and re-embedded.  When the run ledger is enabled every epoch appends
a :class:`~repro.telemetry.ledger.RunRecord` carrying the scores in its
``quality`` field, so temporal quality trajectories live next to the static
benchmarks in the same JSONL and feed the same regression tooling.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import GraphConstructionError
from repro.eval.link_prediction import evaluate_link_prediction
from repro.graph.builders import from_edges
from repro.graph.csr import CSRGraph
from repro.streaming.dynamic import DynamicEmbedder, RefreshPolicy
from repro.streaming.stream import EdgeBatch
from repro.utils.rng import derive_seed


def temporal_edge_stream(
    sources: np.ndarray,
    targets: np.ndarray,
    timestamps: np.ndarray,
    *,
    epochs: int = 4,
    initial_fraction: float = 0.5,
    num_vertices: Optional[int] = None,
) -> Tuple[CSRGraph, List[EdgeBatch]]:
    """Split a timestamped edge list chronologically.

    The earliest ``initial_fraction`` of edges (stable-sorted by timestamp,
    ties in input order) become the initial graph; the remainder is cut into
    ``epochs`` contiguous arrival batches.  Returns
    ``(initial_graph, [EdgeBatch, ...])``.
    """
    src = np.asarray(sources, dtype=np.int64).ravel()
    dst = np.asarray(targets, dtype=np.int64).ravel()
    ts = np.asarray(timestamps).ravel()
    if not (src.shape == dst.shape == ts.shape):
        raise GraphConstructionError(
            "sources, targets and timestamps must be parallel arrays"
        )
    if not 0.0 < initial_fraction < 1.0:
        raise GraphConstructionError(
            f"initial_fraction must be in (0, 1), got {initial_fraction}"
        )
    if epochs < 1:
        raise GraphConstructionError(f"epochs must be >= 1, got {epochs}")
    if src.size < epochs + 1:
        raise GraphConstructionError("too few timestamped edges to replay")

    order = np.argsort(ts, kind="stable")
    src, dst = src[order], dst[order]
    if num_vertices is None:
        num_vertices = int(max(src.max(), dst.max()) + 1)
    initial_count = max(1, int(round(initial_fraction * src.size)))
    initial_count = min(initial_count, src.size - epochs)
    initial = from_edges(
        src[:initial_count], dst[:initial_count],
        num_vertices=num_vertices, symmetrize=True,
    )
    batches = [
        EdgeBatch(add_sources=chunk_src.copy(), add_targets=chunk_dst.copy())
        for chunk_src, chunk_dst in zip(
            np.array_split(src[initial_count:], epochs),
            np.array_split(dst[initial_count:], epochs),
        )
    ]
    return initial, batches


def replay_temporal_link_prediction(
    sources: np.ndarray,
    targets: np.ndarray,
    timestamps: np.ndarray,
    *,
    method: str = "lightne",
    params: Optional[object] = None,
    epochs: int = 4,
    initial_fraction: float = 0.5,
    num_negatives: int = 50,
    num_vertices: Optional[int] = None,
    policy: Optional[RefreshPolicy] = None,
    seed: Optional[int] = 0,
) -> List[Dict[str, object]]:
    """Replay timestamped edges; score each epoch before absorbing it.

    For epoch ``k`` with arriving edges ``E_k``: rank every edge of ``E_k``
    against ``num_negatives`` corrupted tails using the *current* embedding
    (trained on strictly earlier edges — predicting the future), then apply
    the batch to the :class:`DynamicEmbedder` (full ``params`` forwarded,
    sparsifier backend included) and let the refresh policy re-embed.

    Returns one row per epoch (``epoch``, ``edges``, ``MRR``, ``HITS@10``,
    ``refreshed``, ``drift``).  When the run ledger is enabled
    (:func:`repro.telemetry.ledger.enable` / ``--ledger`` /
    ``REPRO_LEDGER=1``), each epoch's scores are appended as the ``quality``
    field of a RunRecord with context ``"temporal.epoch<k>"``.
    """
    from repro.telemetry import ledger

    initial, batches = temporal_edge_stream(
        sources, targets, timestamps,
        epochs=epochs, initial_fraction=initial_fraction,
        num_vertices=num_vertices,
    )
    embedder = DynamicEmbedder(
        initial, params, method=method, policy=policy, seed=seed
    )
    rows: List[Dict[str, object]] = []
    for k, batch in enumerate(batches):
        metrics = evaluate_link_prediction(
            embedder.vectors, batch.add_sources, batch.add_targets,
            num_negatives=num_negatives, ks=(1, 10),
            seed=derive_seed(seed, 1000 + k) if seed is not None else None,
        )
        refreshed = embedder.apply(batch)
        row: Dict[str, object] = {
            "epoch": k,
            "edges": batch.num_additions,
            "MRR": round(metrics.mrr, 4),
            "HITS@10": round(metrics.hits[10], 4),
            "refreshed": bool(refreshed),
            "drift": round(embedder.drift_history[-1], 4)
            if refreshed and embedder.drift_history else None,
        }
        rows.append(row)
        if ledger.is_enabled():
            ledger.record_result(
                embedder.result,
                seed=seed,
                context=f"temporal.epoch{k}",
                quality={
                    "mrr": float(metrics.mrr),
                    "hits@10": float(metrics.hits[10]),
                    "mean_rank": float(metrics.mean_rank),
                },
                extra={"epoch": k, "epoch_edges": int(batch.num_additions)},
            )
    return rows
