"""DeepWalk trained by SGD — the GraphVite stand-in.

GraphVite [41] is a CPU-GPU system running DeepWalk/LINE-style skip-gram with
negative sampling over sampled random walks; the paper uses it as the
quality/efficiency comparator on Friendster and Hyperlink-PLD.  Without a
GPU, we reproduce the *learning rule* — skip-gram with negative sampling over
walk windows — with mini-batched, vectorized numpy SGD.  This keeps the
comparison meaningful: both systems see the same objective, and the paper's
point (matrix factorization reaches better quality per unit compute than SGD)
is exercised directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from repro.embedding.base import (
    EmbeddingResult,
    PipelineContext,
    PipelineSpec,
    run_pipeline,
)
from repro.errors import SamplingError
from repro.graph.compression import CompressedGraph
from repro.graph.csr import CSRGraph
from repro.graph.walks import random_walk_matrix_sample
from repro.utils.rng import SeedLike

GraphLike = Union[CSRGraph, CompressedGraph]


@dataclass(frozen=True)
class DeepWalkSGDParams:
    """Skip-gram-with-negative-sampling hyper-parameters.

    ``walks_per_vertex × walk_length`` controls the corpus size;
    ``epochs`` full passes of SGD are made over the generated pairs.
    """

    dimension: int = 128
    walk_length: int = 20
    walks_per_vertex: int = 10
    window: int = 5
    negatives: int = 5
    learning_rate: float = 0.05
    epochs: int = 2
    batch_size: int = 4096


def _walks_to_pairs(
    walks: np.ndarray, window: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """Expand walk rows into (center, context) pairs within ``window``."""
    centers = []
    contexts = []
    length = walks.shape[1]
    for offset in range(1, window + 1):
        if offset >= length:
            break
        centers.append(walks[:, :-offset].ravel())
        contexts.append(walks[:, offset:].ravel())
    center = np.concatenate(centers)
    context = np.concatenate(contexts)
    order = rng.permutation(center.size)
    return center[order], context[order]


def _deepwalk_body(ctx: PipelineContext):
    graph, params, rng = ctx.graph, ctx.params, ctx.rng
    n = graph.num_vertices
    if params.window < 1:
        raise SamplingError(f"window must be >= 1, got {params.window}")

    with ctx.timer.stage("walks"):
        walks = random_walk_matrix_sample(
            graph, params.walk_length, params.walks_per_vertex, rng
        )
        center, context = _walks_to_pairs(walks, params.window, rng)

    with ctx.timer.stage("sgd"):
        degrees = graph.degrees().astype(np.float64)
        noise = np.maximum(degrees, 1.0) ** 0.75
        noise /= noise.sum()
        scale = 0.5 / params.dimension
        w_in = (rng.random((n, params.dimension)) - 0.5) * scale
        w_out = np.zeros((n, params.dimension))
        # Per-row Adagrad accumulators: batched scatter-adds make a vertex's
        # effective step proportional to its batch multiplicity, which blows
        # up plain SGD on small graphs; Adagrad self-normalizes it away.
        ada_in = np.full(n, 1e-8)
        ada_out = np.full(n, 1e-8)

        for _ in range(params.epochs):
            for start in range(0, center.size, params.batch_size):
                c = center[start : start + params.batch_size]
                o = context[start : start + params.batch_size]
                neg = rng.choice(n, size=(c.size, params.negatives), p=noise)
                _sgd_step(w_in, w_out, ada_in, ada_out, c, o, neg, params.learning_rate)

    ctx.info.update(
        {
            "pairs": int(center.size),
            "walk_length": params.walk_length,
            "walks_per_vertex": params.walks_per_vertex,
        }
    )
    return w_in


DEEPWALK_PIPELINE = PipelineSpec(name="deepwalk", body=_deepwalk_body)


def deepwalk_sgd_embedding(
    graph: GraphLike,
    params: DeepWalkSGDParams = DeepWalkSGDParams(),
    seed: SeedLike = None,
) -> EmbeddingResult:
    """Train DeepWalk with vectorized negative-sampling SGD.

    Uses the standard two-matrix parameterization (input/output vectors) with
    a degree^0.75 negative-sampling distribution and a linearly decaying
    learning rate; the input matrix is returned as the embedding.  Result
    method name is the canonical ``"deepwalk"``; ``"deepwalk-sgd"`` and
    ``"graphvite"`` remain registered aliases.
    """
    return run_pipeline(graph, DEEPWALK_PIPELINE, params, seed)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically clipped logistic function."""
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


def _sgd_step(
    w_in: np.ndarray,
    w_out: np.ndarray,
    ada_in: np.ndarray,
    ada_out: np.ndarray,
    centers: np.ndarray,
    positives: np.ndarray,
    negatives: np.ndarray,
    lr: float,
) -> None:
    """One mini-batch of skip-gram negative-sampling updates (in place).

    Collisions (the same vertex appearing twice in a batch) are resolved by
    ``np.add.at`` scatter adds — Hogwild-style lock-free semantics, the numpy
    analog of GraphVite's asynchronous updates — with per-row Adagrad step
    sizes keeping the accumulated updates bounded.
    """
    d = w_in.shape[1]
    v_c = w_in[centers]  # (B, d)
    v_p = w_out[positives]  # (B, d)
    v_n = w_out[negatives]  # (B, K, d)

    pos_score = _sigmoid(np.einsum("bd,bd->b", v_c, v_p))
    neg_score = _sigmoid(np.einsum("bd,bkd->bk", v_c, v_n))

    g_pos = (1.0 - pos_score)[:, None]  # ∂loss/∂(v_c·v_p)
    g_neg = -neg_score[:, :, None]

    grad_c = g_pos * v_p + np.einsum("bk,bkd->bd", g_neg[:, :, 0], v_n)
    grad_p = g_pos * v_c
    grad_n = g_neg * v_c[:, None, :]

    np.add.at(ada_in, centers, np.einsum("bd,bd->b", grad_c, grad_c) / d)
    step_c = (lr / np.sqrt(ada_in[centers]))[:, None] * grad_c
    np.add.at(w_in, centers, step_c)

    out_rows = np.concatenate([positives, negatives.ravel()])
    out_grads = np.concatenate([grad_p, grad_n.reshape(-1, d)], axis=0)
    np.add.at(ada_out, out_rows, np.einsum("bd,bd->b", out_grads, out_grads) / d)
    steps = (lr / np.sqrt(ada_out[out_rows]))[:, None] * out_grads
    np.add.at(w_out, out_rows, steps)
