"""Shared result container and the pipeline skeleton every method runs on.

:func:`run_pipeline` owns the scaffolding that every embedding module used to
duplicate by hand: seed normalization (:func:`repro.utils.rng.ensure_rng`),
dimension validation, the method-level telemetry root span, the
:class:`~repro.utils.timer.StageTimer` lifecycle, and the standardized
``EmbeddingResult.info`` keys (``method`` / ``params`` / ``n`` / ``m`` plus
the telemetry snapshot).  A method contributes only its stage body, wrapped
in a :class:`PipelineSpec`; the public name -> builder mapping lives in
:mod:`repro.embedding.registry`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro import telemetry
from repro.telemetry import environment, health, ledger
from repro.errors import FactorizationError, NumericalHealthError
from repro.utils.log import get_logger
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.timer import StageTimer

logger = get_logger(__name__)


@dataclass
class EmbeddingResult:
    """An embedding plus provenance.

    Attributes
    ----------
    vectors:
        Dense ``(n, d)`` embedding matrix ``X`` (row ``u`` embeds vertex
        ``u``).
    method:
        Canonical method name (``"lightne"``, ``"netsmf"``, ...), matching
        the registry entry that produced it.
    timer:
        Stage-level wall-clock breakdown (Table 5 rows).
    info:
        Diagnostics.  Always contains ``method``, ``params`` (the params
        dataclass as a plain dict), ``n``, ``m`` and ``telemetry_enabled``;
        methods add their own keys (sample counts, sparsifier nnz, ...).
    """

    vectors: np.ndarray
    method: str
    timer: StageTimer = field(default_factory=StageTimer)
    info: Dict[str, object] = field(default_factory=dict)

    @property
    def num_vertices(self) -> int:
        """Number of embedded vertices."""
        return self.vectors.shape[0]

    @property
    def dimension(self) -> int:
        """Embedding dimension ``d``."""
        return self.vectors.shape[1]

    @property
    def total_seconds(self) -> float:
        """Total recorded wall-clock time."""
        return self.timer.total

    def normalized(self) -> np.ndarray:
        """Row-L2-normalized copy of the vectors (cosine-similarity ready)."""
        norms = np.linalg.norm(self.vectors, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        return self.vectors / norms


def validate_dimension(num_vertices: int, dimension: int) -> None:
    """Shared sanity check for the requested embedding dimension."""
    if dimension < 1:
        raise FactorizationError(f"dimension must be >= 1, got {dimension}")
    if dimension > num_vertices:
        raise FactorizationError(
            f"dimension {dimension} exceeds vertex count {num_vertices}"
        )


def score_edges(
    vectors: np.ndarray, sources: np.ndarray, targets: np.ndarray
) -> np.ndarray:
    """Dot-product edge scores — the ranking function used by the evaluators."""
    return np.einsum("ij,ij->i", vectors[sources], vectors[targets])


@dataclass
class PipelineContext:
    """Everything a stage body receives from :func:`run_pipeline`.

    Attributes
    ----------
    graph:
        The input graph (CSR or compressed).
    params:
        The method's frozen params dataclass.
    rng:
        The normalized :class:`numpy.random.Generator` for the whole run.
    timer:
        The run's :class:`StageTimer`; bodies open Table-5 stages on it.
    span:
        The method-level telemetry root span (a no-op object when telemetry
        is disabled); bodies may attach attributes.
    info:
        Method-specific diagnostics; merged into the standardized
        ``EmbeddingResult.info`` after the body returns.
    health:
        The run's :class:`~repro.telemetry.health.HealthRecorder` (a fresh
        recorder honoring the active policy; ``enabled`` is False when the
        policy is ``off``).  ``run_pipeline`` also installs it as the
        thread's active recorder, so stage code normally reaches it through
        the module-level :func:`repro.telemetry.health.checkpoint` helper
        rather than this field.
    """

    graph: Any
    params: Any
    rng: np.random.Generator
    timer: StageTimer
    span: Any
    info: Dict[str, object] = field(default_factory=dict)
    health: Any = None


@dataclass(frozen=True)
class PipelineSpec:
    """A method's identity inside the pipeline skeleton.

    ``body`` receives a :class:`PipelineContext` and returns the ``(n, d)``
    vector matrix; everything around it (seeding, validation, telemetry,
    timing, result assembly) is owned by :func:`run_pipeline`.
    """

    name: str
    body: Callable[[PipelineContext], np.ndarray]


def run_pipeline(
    graph: Any,
    spec: PipelineSpec,
    params: Any,
    seed: SeedLike = None,
) -> EmbeddingResult:
    """Run ``spec.body`` under the shared method scaffolding.

    Owns, for every method: ``validate_dimension``, ``ensure_rng(seed)``, the
    method-level telemetry root span (named ``spec.name``, carrying ``n`` /
    ``m`` / ``dimension``), the ``StageTimer`` lifecycle, and the
    standardized ``info`` keys (``method``, ``params``, ``n``, ``m``,
    ``telemetry_enabled`` and — when telemetry is on — a ``telemetry``
    snapshot of the metrics registry and span count).

    Numerical health: a fresh :class:`~repro.telemetry.health.HealthRecorder`
    is installed for the body (stage checkpoints, contract probes), the
    final embedding is fingerprinted as stage ``"final"``, and — regardless
    of the health policy — a fail-fast non-finite guard runs on the result
    (raising :class:`~repro.errors.NumericalHealthError` under policy
    ``raise``, warning and counting ``health.nonfinite`` otherwise).  With
    the policy on, ``info["health"]`` / ``info["digests"]`` carry the
    recorder summary into the ledger record.
    """
    validate_dimension(graph.num_vertices, params.dimension)
    rng = ensure_rng(seed)
    timer = StageTimer()
    recorder = health.HealthRecorder()
    with telemetry.span(
        spec.name,
        n=graph.num_vertices,
        m=graph.num_edges,
        dimension=params.dimension,
    ) as root:
        ctx = PipelineContext(
            graph=graph, params=params, rng=rng, timer=timer, span=root,
            health=recorder,
        )
        # The recorder is thread-local-active for the body so lower layers
        # (sparsifier dispatcher, factorize) hit their health hooks without
        # threading the context through every signature.
        with health.recorder_scope(recorder):
            vectors = spec.body(ctx)
            recorder.checkpoint("final", vectors)
        # Fail-fast non-finite guard on the final embedding: always runs
        # (one isfinite pass), independent of the digest/probe policy — a
        # NaN embedding must never flow silently into eval or the ledger.
        nonfinite = int(vectors.size - np.count_nonzero(np.isfinite(vectors)))
        if nonfinite:
            telemetry.counter("health.nonfinite").inc(nonfinite)
            message = (
                f"{spec.name}: final embedding contains {nonfinite} "
                f"non-finite entries (shape {vectors.shape})"
            )
            if recorder.policy == "raise":
                raise NumericalHealthError(message)
            logger.warning(message)

    params_dict = dataclasses.asdict(params)
    info: Dict[str, object] = {
        "method": spec.name,
        "params": params_dict,
        "n": graph.num_vertices,
        "m": graph.num_edges,
    }
    info.update(ctx.info)
    # Execution provenance, resolved even when telemetry is off: the ledger
    # needs the actual pool width/backend (not the ``workers=None`` sentinel)
    # to keep thread and process runs comparable.
    if "workers" in params_dict:
        from repro.utils.parallel import default_workers

        info["resolved_workers"] = int(params_dict["workers"] or default_workers())
    else:
        info["resolved_workers"] = 1
    info["resolved_backend"] = str(params_dict.get("backend") or "thread")
    info["env"] = environment.collect_fingerprint()
    if recorder.enabled:
        info["health"] = recorder.summary()
        info["digests"] = recorder.digest_map()
    info["telemetry_enabled"] = telemetry.is_enabled()
    if telemetry.is_enabled():
        info["telemetry"] = {
            "metrics": telemetry.get_metrics().snapshot(),
            "trace_spans": telemetry.get_tracer().span_count,
        }
    logger.debug(
        "%s: done in %.3fs (%s)",
        spec.name,
        timer.total,
        ", ".join(f"{name}={secs:.3f}s" for name, secs in timer.as_rows()),
    )
    result = EmbeddingResult(
        vectors=vectors, method=spec.name, timer=timer, info=info
    )
    # Opt-in run ledger (REPRO_LEDGER=1, CLI --ledger, or the benchmark
    # harness's enabled_scope): one persisted RunRecord per pipeline run.
    ledger.maybe_record(result, seed=seed, context="run_pipeline")
    return result
