"""Common result container and helpers shared by every embedding method."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.errors import FactorizationError
from repro.utils.timer import StageTimer


@dataclass
class EmbeddingResult:
    """An embedding plus provenance.

    Attributes
    ----------
    vectors:
        Dense ``(n, d)`` embedding matrix ``X`` (row ``u`` embeds vertex
        ``u``).
    method:
        Human-readable method name (``"lightne"``, ``"netsmf"``, ...).
    timer:
        Stage-level wall-clock breakdown (Table 5 rows).
    info:
        Method-specific diagnostics (sample counts, sparsifier nnz, ...).
    """

    vectors: np.ndarray
    method: str
    timer: StageTimer = field(default_factory=StageTimer)
    info: Dict[str, object] = field(default_factory=dict)

    @property
    def num_vertices(self) -> int:
        """Number of embedded vertices."""
        return self.vectors.shape[0]

    @property
    def dimension(self) -> int:
        """Embedding dimension ``d``."""
        return self.vectors.shape[1]

    @property
    def total_seconds(self) -> float:
        """Total recorded wall-clock time."""
        return self.timer.total

    def normalized(self) -> np.ndarray:
        """Row-L2-normalized copy of the vectors (cosine-similarity ready)."""
        norms = np.linalg.norm(self.vectors, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        return self.vectors / norms


def validate_dimension(num_vertices: int, dimension: int) -> None:
    """Shared sanity check for the requested embedding dimension."""
    if dimension < 1:
        raise FactorizationError(f"dimension must be >= 1, got {dimension}")
    if dimension > num_vertices:
        raise FactorizationError(
            f"dimension {dimension} exceeds vertex count {num_vertices}"
        )


def score_edges(
    vectors: np.ndarray, sources: np.ndarray, targets: np.ndarray
) -> np.ndarray:
    """Dot-product edge scores — the ranking function used by the evaluators."""
    return np.einsum("ij,ij->i", vectors[sources], vectors[targets])
