r"""NRP/NPR [38] stand-in — PPR-polynomial factorization *without* the log.

Section 2 of the paper singles out NPR: it factorizes the pairwise
personalized-PageRank matrix but "omits a step of taking the entry-wise
logarithm … Due to that omission, NPR is able to operate on the original
graph efficiently while the others must construct the random walk matrix
exactly or approximately."

We reproduce that shortcut faithfully: the PPR polynomial

    Π = Σ_{r=0}^{k} α (1-α)^r (D⁻¹A)^r

is never materialized — it is wrapped as a LinearOperator (Horner SPMVs) and
fed straight into the same randomized SVD every other method uses.  This is
both the baseline for Figure 4 and the library's live demonstration of *why*
the truncated log forces NetSMF-style sampling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.embedding.base import (
    EmbeddingResult,
    PipelineContext,
    PipelineSpec,
    run_pipeline,
)
from repro.errors import FactorizationError
from repro.graph.compression import CompressedGraph
from repro.graph.csr import CSRGraph
from repro.linalg.kernels import resolve_precision
from repro.linalg.operators import polynomial_operator
from repro.linalg.randomized_svd import embedding_from_svd
from repro.linalg.single_pass import factorize
from repro.utils.rng import SeedLike

GraphLike = Union[CSRGraph, CompressedGraph]


@dataclass(frozen=True)
class NRPParams:
    """NRP hyper-parameters: PPR teleport ``alpha`` and truncation order.

    ``workers`` / ``precision`` thread the Horner SPMVs and the SVD through
    :mod:`repro.linalg.kernels` (``"single"`` keeps the implicit operator's
    walk matrix and work buffers in float32).  ``backend`` is accepted for
    CLI uniformity (NRP's implicit operator has no out-of-core stage).
    ``factorizer="single_pass"`` swaps the rSVD for the two-sided sketched
    factorization (the PPR polynomial is *not* symmetric, so this path uses
    one forward plus one adjoint operator application instead of rSVD's
    ``2 + 2q``); see :mod:`repro.linalg.single_pass`.
    """

    dimension: int = 128
    alpha: float = 0.15
    order: int = 10
    workers: Optional[int] = None
    backend: str = "thread"
    precision: str = "double"
    factorizer: str = "rsvd"


def _nrp_body(ctx: PipelineContext):
    graph, params = ctx.graph, ctx.params
    if not 0.0 < params.alpha < 1.0:
        raise FactorizationError(f"alpha must be in (0, 1), got {params.alpha}")
    if params.order < 1:
        raise FactorizationError(f"order must be >= 1, got {params.order}")
    if isinstance(graph, CompressedGraph):
        graph = graph.decompress()

    with ctx.timer.stage("svd"):
        degrees = graph.weighted_degrees()
        safe = np.where(degrees > 0, degrees, 1.0)
        walk = (sp.diags(1.0 / safe) @ graph.adjacency()).tocsr()
        coefficients = [
            params.alpha * (1.0 - params.alpha) ** r for r in range(params.order + 1)
        ]
        operator = polynomial_operator(
            walk,
            coefficients,
            workers=params.workers,
            dtype=resolve_precision(params.precision),
        )
        u, sigma, _ = factorize(
            operator, params.dimension, factorizer=params.factorizer,
            seed=ctx.rng, precision=params.precision,
            workers=params.workers, symmetric=False,
        )
        vectors = embedding_from_svd(u, sigma)
    ctx.info.update(
        {
            "alpha": params.alpha,
            "order": params.order,
            "factorizer": params.factorizer,
        }
    )
    return vectors


NRP_PIPELINE = PipelineSpec(name="nrp", body=_nrp_body)


def nrp_embedding(
    graph: GraphLike,
    params: NRPParams = NRPParams(),
    seed: SeedLike = None,
) -> EmbeddingResult:
    """Factorize the implicit truncated-PPR operator (no log, no sampling)."""
    return run_pipeline(graph, NRP_PIPELINE, params, seed)
