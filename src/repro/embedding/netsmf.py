"""NetSMF [22] — sparse matrix factorization via PathSampling (paper §3.1).

This is the *plain* NetSMF baseline: Algorithm 2's per-edge sampling but with
the downsampling coin disabled (every draw is kept), the sort-based
aggregator by default (standing in for NetSMF's per-thread sparsifiers merged
at the end), followed by randomized SVD.  LightNE differs by (a) enabling
downsampling, (b) the shared hash table, and (c) adding spectral propagation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.embedding.base import (
    EmbeddingResult,
    PipelineContext,
    PipelineSpec,
    run_pipeline,
)
from repro.graph.compression import CompressedGraph
from repro.graph.csr import CSRGraph
from repro.linalg.randomized_svd import embedding_from_svd
from repro.linalg.single_pass import factorize
from repro.sparsifier.backends import build_sparsifier
from repro.sparsifier.builder import sparsifier_to_netmf_matrix
from repro.sparsifier.path_sampling import PathSamplingConfig
from repro.telemetry import health
from repro.utils.rng import SeedLike

GraphLike = Union[CSRGraph, CompressedGraph]


@dataclass(frozen=True)
class NetSMFParams:
    """NetSMF hyper-parameters.

    Attributes
    ----------
    dimension:
        Embedding dimension ``d``.
    window:
        Context window ``T`` (paper default 10).
    sample_multiplier:
        ``M = multiplier · T · m`` (the paper sweeps 1–8 for NetSMF).
    negative_samples:
        The ``b`` of Eq. (1).
    aggregator:
        ``"sort"`` mimics NetSMF's merge-at-end; ``"hash"`` /
        ``"hash-sharded"`` available too.
    sparsifier:
        Sparsifier backend: ``"path"`` (default, the Monte-Carlo
        PathSampling pipeline) or ``"ppr"`` (push-based PPR proximity);
        see :mod:`repro.sparsifier.backends`.
    workers:
        Thread-pool width for sampling and the SVD's SPMMs
        (``None`` = ``default_workers()``); bit-identical at every width.
    backend:
        ``"thread"`` (default) or ``"process"`` (out-of-core sampling /
        aggregation substrate — see
        :func:`repro.sparsifier.builder.build_netmf_sparsifier`);
        bit-identical either way.
    precision:
        Dense-kernel dtype policy (``"double"``/``"single"``); see
        :mod:`repro.linalg.kernels`.
    factorizer:
        ``"rsvd"`` (default, bit-identical to the pre-knob pipeline) or
        ``"single_pass"`` (SketchNE-style sketched factorization); see
        :mod:`repro.linalg.single_pass`.
    """

    dimension: int = 128
    window: int = 10
    sample_multiplier: float = 1.0
    negative_samples: float = 1.0
    aggregator: str = "sort"
    sparsifier: str = "path"
    workers: Optional[int] = None
    backend: str = "thread"
    precision: str = "double"
    factorizer: str = "rsvd"


def _netsmf_body(ctx: PipelineContext):
    graph, params = ctx.graph, ctx.params
    config = PathSamplingConfig(
        window=params.window,
        num_samples=PathSamplingConfig.samples_for_multiplier(
            graph, params.window, params.sample_multiplier
        ),
        downsample=False,
    )
    result = build_sparsifier(
        graph, config, ctx.rng, sparsifier=params.sparsifier,
        aggregator=params.aggregator, timer=ctx.timer,
        workers=params.workers, backend=params.backend,
    )
    with ctx.timer.stage("svd"):
        matrix = sparsifier_to_netmf_matrix(
            graph, result, negative_samples=params.negative_samples
        )
        health.checkpoint("svd.netmf_matrix", matrix)
        u, sigma, _ = factorize(
            matrix, params.dimension, factorizer=params.factorizer,
            seed=ctx.rng, precision=params.precision,
            workers=params.workers, symmetric=True,
        )
        vectors = embedding_from_svd(u, sigma)
        health.checkpoint("svd", vectors)
    ctx.info.update(
        {
            "window": params.window,
            "num_draws": result.num_draws,
            "sparsifier": params.sparsifier,
            "sparsifier_nnz": result.nnz,
            "sample_multiplier": params.sample_multiplier,
            "factorizer": params.factorizer,
        }
    )
    return vectors


NETSMF_PIPELINE = PipelineSpec(name="netsmf", body=_netsmf_body)


def netsmf_embedding(
    graph: GraphLike,
    params: NetSMFParams = NetSMFParams(),
    seed: SeedLike = None,
) -> EmbeddingResult:
    """Compute a NetSMF embedding (no downsampling, no propagation)."""
    return run_pipeline(graph, NETSMF_PIPELINE, params, seed)
