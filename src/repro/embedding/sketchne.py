"""SketchNE / NetMF+ — the single-pass sketched pipeline, end to end.

SketchNE (arXiv 2110.12782; PAPERS.md) and LIGHTNE 2.0 (arXiv 2302.07084)
replace the factorization heart of the LightNE pipeline: instead of the
two-sided Gaussian randomized SVD (Algorithm 3, ``2 + 2q`` passes over the
NetMF matrix, several dense ``n × (d+p)`` workspaces), they draw sparse-sign
sketches and recover the spectrum from **one** streamed pass and a small
eigendecomposition (:mod:`repro.linalg.single_pass`).  Everything around the
factorization is shared with LightNE: the downsampled PathSampling
sparsifier (Algorithm 2), the trunc-log NetMF matrix estimator, ProNE's
spectral propagation, both execution substrates, and the
``precision="single"`` dtype policy.

The method is registered as ``sketchne`` (aliases ``netmf+`` /
``netmfplus``) with stages ``sparsifier`` / ``svd`` / ``propagation`` so
ledger rows compare directly against ``lightne``.  Determinism matches the
rest of the library: embeddings are bit-identical for a fixed seed at every
worker count and on both thread/process substrates.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from typing import Optional, Union

from repro.embedding.base import (
    EmbeddingResult,
    PipelineContext,
    PipelineSpec,
    run_pipeline,
)
from repro.graph.compression import CompressedGraph
from repro.graph.csr import CSRGraph
from repro.linalg.randomized_svd import embedding_from_svd
from repro.linalg.single_pass import factorize
from repro.linalg.sketch import SKETCH_NNZ_PER_ROW
from repro.linalg.spectral import spectral_propagation
from repro.sparsifier.backends import build_sparsifier
from repro.sparsifier.builder import sparsifier_to_netmf_matrix
from repro.sparsifier.path_sampling import PathSamplingConfig
from repro.telemetry import health
from repro.utils.log import get_logger
from repro.utils.rng import SeedLike

GraphLike = Union[CSRGraph, CompressedGraph]

logger = get_logger(__name__)


@dataclass(frozen=True)
class SketchNEParams:
    """SketchNE hyper-parameters.

    The sparsifier-side knobs (``window`` / ``sample_multiplier`` /
    ``downsample`` / ``aggregator`` / ``sparsifier`` / ``batch_size``) and
    the propagation knobs (``propagate`` / ``propagation_order`` / ``mu`` /
    ``theta``) mean exactly what they mean on
    :class:`~repro.embedding.lightne.LightNEParams`.  New here:

    nnz_per_row:
        Sparse-sign sketch density ζ (expected nonzeros per sketch row;
        see :mod:`repro.linalg.sketch`).
    oversampling:
        Extra range-sketch columns ``p`` beyond the embedding dimension;
        the co-range sketch is ``2(d+p)+1`` wide (Tropp et al.'s rule).
        ``None`` (default) resolves ``p = max(10, 3d)`` — the
        flat-spectrum-safe ``w = 4d`` width from the E18 ablation (one
        pass cannot power-iterate, so width is the quality knob).
    factorizer:
        ``"single_pass"`` (default — the method's raison d'être) or
        ``"rsvd"`` for an in-place ablation against Algorithm 3 with every
        other stage held fixed.
    """

    dimension: int = 128
    window: int = 10
    sample_multiplier: float = 1.0
    negative_samples: float = 1.0
    downsample: bool = True
    downsample_constant: Optional[float] = None
    nnz_per_row: int = SKETCH_NNZ_PER_ROW
    oversampling: Optional[int] = None
    propagate: bool = True
    propagation_order: int = 10
    mu: float = 0.2
    theta: float = 0.5
    aggregator: str = "hash"
    sparsifier: str = "path"
    workers: Optional[int] = None
    backend: str = "thread"
    precision: str = "double"
    factorizer: str = "single_pass"
    batch_size: int = 2_000_000


def _sketchne_body(ctx: PipelineContext):
    graph, params = ctx.graph, ctx.params
    config = PathSamplingConfig(
        window=params.window,
        num_samples=PathSamplingConfig.samples_for_multiplier(
            graph, params.window, params.sample_multiplier
        ),
        downsample=params.downsample,
        downsample_constant=params.downsample_constant,
    )
    logger.debug(
        "sketchne: n=%d m=%d T=%d M=%d factorizer=%s",
        graph.num_vertices, graph.num_edges, config.window,
        config.num_samples, params.factorizer,
    )
    ctx.span.set_attribute("window", params.window)
    ctx.span.set_attribute("factorizer", params.factorizer)
    ctx.span.set_attribute("nnz_per_row", params.nnz_per_row)
    sparsifier = build_sparsifier(
        graph, config, ctx.rng, sparsifier=params.sparsifier,
        aggregator=params.aggregator, timer=ctx.timer,
        workers=params.workers, backend=params.backend,
        batch_size=params.batch_size,
    )
    with ctx.timer.stage("svd", rank=params.dimension):
        matrix = sparsifier_to_netmf_matrix(
            graph, sparsifier, negative_samples=params.negative_samples
        )
        health.checkpoint("svd.netmf_matrix", matrix)
        u, sigma, _ = factorize(
            matrix, params.dimension, factorizer=params.factorizer,
            oversampling=params.oversampling,
            nnz_per_row=params.nnz_per_row, seed=ctx.rng,
            precision=params.precision, workers=params.workers,
            symmetric=True,
        )
        vectors = embedding_from_svd(u, sigma)
        health.checkpoint("svd", vectors)
    if params.propagate:
        with ctx.timer.stage("propagation", order=params.propagation_order):
            offload_dir = (
                tempfile.gettempdir() if params.backend == "process" else None
            )
            vectors = spectral_propagation(
                graph,
                vectors,
                order=params.propagation_order,
                mu=params.mu,
                theta=params.theta,
                precision=params.precision,
                workers=params.workers,
                offload_dir=offload_dir,
            )
        health.checkpoint("propagation", vectors)
    ctx.span.set_attribute("sparsifier_nnz", sparsifier.nnz)
    ctx.info.update(
        {
            "window": params.window,
            "sample_multiplier": params.sample_multiplier,
            "num_draws": sparsifier.num_draws,
            "sparsifier": params.sparsifier,
            "sparsifier_nnz": sparsifier.nnz,
            "downsample": params.downsample,
            "propagated": params.propagate,
            "precision": params.precision,
            "backend": params.backend,
            "factorizer": params.factorizer,
            "nnz_per_row": params.nnz_per_row,
        }
    )
    return vectors


SKETCHNE_PIPELINE = PipelineSpec(name="sketchne", body=_sketchne_body)


def sketchne_embedding(
    graph: GraphLike,
    params: SketchNEParams = SketchNEParams(),
    seed: SeedLike = None,
) -> EmbeddingResult:
    """Run the SketchNE (NetMF+) pipeline on ``graph``.

    Identical stage structure to :func:`~repro.embedding.lightne.
    lightne_embedding` — sparsifier, factorization, optional spectral
    propagation — with the factorization done by the single-pass sketched
    backend.  When telemetry is enabled, the ``sketch.*`` spans/counters
    (operator passes, flops, bytes, sketch width/density) appear under the
    ``svd`` stage.
    """
    return run_pipeline(graph, SKETCHNE_PIPELINE, params, seed)
