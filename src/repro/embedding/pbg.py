"""PyTorch-BigGraph stand-in: edge-level embedding with a ranking loss.

PBG [15] trains shallow node embeddings by SGD over edges, scoring pairs by
dot product and minimizing a margin/softmax ranking loss against sampled
corrupted edges, sharded across a parameter server.  Our single-machine
reproduction keeps the objective — logistic loss on true edges vs. uniformly
corrupted ones (PBG's "uniform negative sampling" default) — trained with the
same vectorized mini-batch machinery as the DeepWalk baseline.  It is the
comparator for experiment E1 (LiveJournal link prediction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.embedding.base import (
    EmbeddingResult,
    PipelineContext,
    PipelineSpec,
    run_pipeline,
)
from repro.graph.compression import CompressedGraph
from repro.graph.csr import CSRGraph
from repro.utils.rng import SeedLike

GraphLike = Union[CSRGraph, CompressedGraph]


@dataclass(frozen=True)
class PBGParams:
    """PBG-style trainer hyper-parameters.

    PBG optimizes with Adagrad (per-parameter adaptive step sizes); we keep
    that choice — plain SGD on the ranking loss is unstable at useful
    learning rates.
    """

    dimension: int = 128
    epochs: int = 10
    negatives: int = 10
    learning_rate: float = 0.1
    batch_size: int = 8192


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


def _pbg_body(ctx: PipelineContext):
    graph, params, rng = ctx.graph, ctx.params, ctx.rng
    n = graph.num_vertices

    if isinstance(graph, CompressedGraph):
        flat = graph.decompress()
    else:
        flat = graph
    src, dst = flat.edge_endpoints()
    mask = src < dst
    src, dst = src[mask], dst[mask]

    with ctx.timer.stage("sgd"):
        scale = 1.0 / np.sqrt(params.dimension)
        w = rng.standard_normal((n, params.dimension)) * scale
        adagrad = np.full(n, 1e-8)  # per-row accumulated squared gradients
        for _ in range(params.epochs):
            order = rng.permutation(src.size)
            for start in range(0, src.size, params.batch_size):
                idx = order[start : start + params.batch_size]
                s, d = src[idx], dst[idx]
                neg = rng.integers(0, n, size=(s.size, params.negatives))
                _ranking_step(w, adagrad, s, d, neg, params.learning_rate)

    ctx.info.update({"epochs": params.epochs, "negatives": params.negatives})
    return w


PBG_PIPELINE = PipelineSpec(name="pbg", body=_pbg_body)


def pbg_embedding(
    graph: GraphLike,
    params: PBGParams = PBGParams(),
    seed: SeedLike = None,
) -> EmbeddingResult:
    """Train the PBG-style edge-ranking embedding."""
    return run_pipeline(graph, PBG_PIPELINE, params, seed)


def _ranking_step(
    w: np.ndarray,
    adagrad: np.ndarray,
    sources: np.ndarray,
    targets: np.ndarray,
    negatives: np.ndarray,
    lr: float,
) -> None:
    """One mini-batch: logistic loss on (s,t) positive vs (s,neg) corrupted.

    Updates use per-row Adagrad step sizes (``lr / sqrt(Σ‖g‖²)``), PBG's
    optimizer — plain SGD on this loss is divergence-prone because the two
    endpoints amplify each other's norms.
    """
    d = w.shape[1]
    v_s = w[sources]
    v_t = w[targets]
    v_n = w[negatives]  # (B, K, d)

    pos = _sigmoid(np.einsum("bd,bd->b", v_s, v_t))
    neg = _sigmoid(np.einsum("bd,bkd->bk", v_s, v_n))

    g_pos = (1.0 - pos)[:, None]
    g_neg = -neg[:, :, None]

    grad_s = g_pos * v_t + np.einsum("bkd->bd", g_neg * v_n)
    grad_t = g_pos * v_s
    grad_n = g_neg * v_s[:, None, :]

    # Accumulate squared-gradient norms per touched row, then scale.
    flat_rows = np.concatenate([sources, targets, negatives.ravel()])
    flat_grads = np.concatenate(
        [grad_s, grad_t, grad_n.reshape(-1, d)], axis=0
    )
    np.add.at(adagrad, flat_rows, np.einsum("bd,bd->b", flat_grads, flat_grads) / d)
    steps = (lr / np.sqrt(adagrad[flat_rows]))[:, None] * flat_grads
    np.add.at(w, flat_rows, steps)
