"""node2vec [7] — biased second-order random walks + skip-gram SGD.

The paper (§3.1) counts node2vec in the NetMF family: its stationary walk
matrix is also a polynomial of ``A`` and ``D``.  We implement the original
algorithm: walks biased by the return parameter ``p`` and in-out parameter
``q`` (per-step probabilities ``1/p`` for returning to the previous vertex,
``1`` for triangle-closing moves, ``1/q`` for outward moves), fed to the
same Adagrad skip-gram trainer as the DeepWalk baseline.

Second-order walks cannot be advanced with a single degree-modulo draw, so
the walker keeps ``(previous, current)`` state and rejects/accepts proposals
(rejection sampling — the standard trick that avoids materializing alias
tables per edge pair, and vectorizes well).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.embedding.base import (
    EmbeddingResult,
    PipelineContext,
    PipelineSpec,
    run_pipeline,
)
from repro.embedding.deepwalk import DeepWalkSGDParams, _sgd_step, _walks_to_pairs
from repro.errors import SamplingError
from repro.graph.compression import CompressedGraph
from repro.graph.csr import CSRGraph
from repro.utils.rng import SeedLike, ensure_rng

GraphLike = Union[CSRGraph, CompressedGraph]


@dataclass(frozen=True)
class Node2VecParams:
    """node2vec hyper-parameters (``p``/``q`` as in the original paper)."""

    dimension: int = 128
    walk_length: int = 20
    walks_per_vertex: int = 10
    window: int = 5
    negatives: int = 5
    learning_rate: float = 0.05
    epochs: int = 2
    batch_size: int = 4096
    return_p: float = 1.0
    in_out_q: float = 1.0


def biased_walks(
    graph: GraphLike,
    walk_length: int,
    walks_per_vertex: int,
    *,
    return_p: float = 1.0,
    in_out_q: float = 1.0,
    seed: SeedLike = None,
    max_rejections: int = 16,
) -> np.ndarray:
    """Sample node2vec's second-order walks, vectorized with rejection.

    Proposal: a uniform neighbor of the current vertex.  Acceptance weight:
    ``1/p`` if the proposal returns to the previous vertex, ``1`` if the
    proposal neighbors the previous vertex (distance 1), else ``1/q``.
    Normalizing by ``max(1/p, 1, 1/q)`` makes it a valid rejection sampler.
    Walkers that exhaust ``max_rejections`` keep the last proposal (bias is
    negligible for reasonable p/q and keeps the sampler total).
    """
    if walk_length < 1:
        raise SamplingError(f"walk_length must be >= 1, got {walk_length}")
    if walks_per_vertex < 1:
        raise SamplingError(
            f"walks_per_vertex must be >= 1, got {walks_per_vertex}"
        )
    if return_p <= 0 or in_out_q <= 0:
        raise SamplingError("p and q must be positive")
    if isinstance(graph, CompressedGraph):
        graph = graph.decompress()
    rng = ensure_rng(seed)
    n = graph.num_vertices
    degrees = graph.degrees()
    ceiling = max(1.0 / return_p, 1.0, 1.0 / in_out_q)

    starts = np.tile(np.arange(n, dtype=np.int64), walks_per_vertex)
    walks = np.empty((starts.size, walk_length + 1), dtype=np.int64)
    walks[:, 0] = starts

    # First step: uniform (no previous vertex yet).
    current = starts.copy()
    movable = degrees[current] > 0
    if movable.any():
        cur = current[movable]
        idx = (rng.integers(0, 2**32, size=cur.size, dtype=np.uint64)
               % degrees[cur].astype(np.uint64)).astype(np.int64)
        current[movable] = graph.ith_neighbors(cur, idx)
    walks[:, 1] = current
    previous = starts.copy()

    def is_edge_bulk(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        out = np.empty(a.size, dtype=bool)
        for i in range(a.size):
            out[i] = graph.has_edge(int(a[i]), int(b[i]))
        return out

    for t in range(2, walk_length + 1):
        proposal = current.copy()
        undecided = degrees[current] > 0
        for _ in range(max_rejections):
            if not undecided.any():
                break
            active = np.flatnonzero(undecided)
            cur = current[active]
            idx = (rng.integers(0, 2**32, size=cur.size, dtype=np.uint64)
                   % degrees[cur].astype(np.uint64)).astype(np.int64)
            cand = graph.ith_neighbors(cur, idx)
            prev = previous[active]
            weight = np.where(
                cand == prev,
                1.0 / return_p,
                np.where(is_edge_bulk(cand, prev), 1.0, 1.0 / in_out_q),
            )
            accept = rng.random(cur.size) < weight / ceiling
            proposal[active] = cand  # remember the latest proposal
            undecided[active[accept]] = False
        previous = current
        current = np.where(degrees[current] > 0, proposal, current)
        walks[:, t] = current
    return walks


def _node2vec_body(ctx: PipelineContext):
    graph, params, rng = ctx.graph, ctx.params, ctx.rng
    n = graph.num_vertices
    if params.window < 1:
        raise SamplingError(f"window must be >= 1, got {params.window}")

    with ctx.timer.stage("walks"):
        walks = biased_walks(
            graph,
            params.walk_length,
            params.walks_per_vertex,
            return_p=params.return_p,
            in_out_q=params.in_out_q,
            seed=rng,
        )
        center, context = _walks_to_pairs(walks, params.window, rng)

    with ctx.timer.stage("sgd"):
        degrees = graph.degrees().astype(np.float64)
        noise = np.maximum(degrees, 1.0) ** 0.75
        noise /= noise.sum()
        scale = 0.5 / params.dimension
        w_in = (rng.random((n, params.dimension)) - 0.5) * scale
        w_out = np.zeros((n, params.dimension))
        ada_in = np.full(n, 1e-8)
        ada_out = np.full(n, 1e-8)
        for _ in range(params.epochs):
            for start in range(0, center.size, params.batch_size):
                c = center[start : start + params.batch_size]
                o = context[start : start + params.batch_size]
                neg = rng.choice(n, size=(c.size, params.negatives), p=noise)
                _sgd_step(w_in, w_out, ada_in, ada_out, c, o, neg,
                          params.learning_rate)

    ctx.info.update(
        {
            "pairs": int(center.size),
            "p": params.return_p,
            "q": params.in_out_q,
        }
    )
    return w_in


NODE2VEC_PIPELINE = PipelineSpec(name="node2vec", body=_node2vec_body)


def node2vec_embedding(
    graph: GraphLike,
    params: Node2VecParams = Node2VecParams(),
    seed: SeedLike = None,
) -> EmbeddingResult:
    """Train node2vec: biased walks, then skip-gram with negative sampling."""
    return run_pipeline(graph, NODE2VEC_PIPELINE, params, seed)
