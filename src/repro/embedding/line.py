"""LINE [32] — first-order proximity embedding.

The paper (Section 3.1) observes LINE approximately factorizes the NetMF
matrix with ``T = 1``; we implement it exactly that way.  For graphs past the
dense limit the ``T = 1`` matrix is sparse (only edge entries), so we build
it sparsely and reuse the randomized SVD.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

from repro.embedding.base import EmbeddingResult, validate_dimension
from repro.graph.compression import CompressedGraph
from repro.graph.csr import CSRGraph
from repro.linalg.randomized_svd import embedding_from_svd, randomized_svd
from repro.sparsifier.builder import trunc_log
from repro.utils.rng import SeedLike
from repro.utils.timer import StageTimer

GraphLike = Union[CSRGraph, CompressedGraph]


def line_matrix(graph: GraphLike, negative_samples: float = 1.0) -> sp.csr_matrix:
    """``trunc_log( vol(G)/b · D⁻¹ A D⁻¹ )`` — Eq. (1) at ``T = 1``, sparse."""
    if isinstance(graph, CompressedGraph):
        graph = graph.decompress()
    degrees = graph.weighted_degrees()
    safe = np.where(degrees > 0, degrees, 1.0)
    inv_d = sp.diags(1.0 / safe)
    matrix = (graph.volume / negative_samples) * (inv_d @ graph.adjacency() @ inv_d)
    return trunc_log(matrix.tocsr())


def line_embedding(
    graph: GraphLike,
    dimension: int = 128,
    *,
    negative_samples: float = 1.0,
    seed: SeedLike = None,
) -> EmbeddingResult:
    """LINE embedding via the T=1 matrix factorization."""
    validate_dimension(graph.num_vertices, dimension)
    timer = StageTimer()
    with timer.stage("matrix"):
        matrix = line_matrix(graph, negative_samples)
    with timer.stage("svd"):
        u, sigma, _ = randomized_svd(matrix, dimension, seed=seed)
        vectors = embedding_from_svd(u, sigma)
    return EmbeddingResult(
        vectors=vectors, method="line", timer=timer, info={"window": 1}
    )
