"""LINE [32] — first-order proximity embedding.

The paper (Section 3.1) observes LINE approximately factorizes the NetMF
matrix with ``T = 1``; we implement it exactly that way.  For graphs past the
dense limit the ``T = 1`` matrix is sparse (only edge entries), so we build
it sparsely and reuse the randomized SVD.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.embedding.base import (
    EmbeddingResult,
    PipelineContext,
    PipelineSpec,
    run_pipeline,
)
from repro.graph.compression import CompressedGraph
from repro.graph.csr import CSRGraph
from repro.linalg.randomized_svd import embedding_from_svd, randomized_svd
from repro.sparsifier.builder import trunc_log
from repro.utils.rng import SeedLike

GraphLike = Union[CSRGraph, CompressedGraph]


@dataclass(frozen=True)
class LINEParams:
    """LINE hyper-parameters (the ``T = 1`` NetMF factorization)."""

    dimension: int = 128
    negative_samples: float = 1.0


def line_matrix(graph: GraphLike, negative_samples: float = 1.0) -> sp.csr_matrix:
    """``trunc_log( vol(G)/b · D⁻¹ A D⁻¹ )`` — Eq. (1) at ``T = 1``, sparse."""
    if isinstance(graph, CompressedGraph):
        graph = graph.decompress()
    degrees = graph.weighted_degrees()
    safe = np.where(degrees > 0, degrees, 1.0)
    inv_d = sp.diags(1.0 / safe)
    matrix = (graph.volume / negative_samples) * (inv_d @ graph.adjacency() @ inv_d)
    return trunc_log(matrix.tocsr())


def _line_body(ctx: PipelineContext):
    params = ctx.params
    with ctx.timer.stage("matrix"):
        matrix = line_matrix(ctx.graph, params.negative_samples)
    with ctx.timer.stage("svd"):
        u, sigma, _ = randomized_svd(matrix, params.dimension, seed=ctx.rng)
        vectors = embedding_from_svd(u, sigma)
    ctx.info["window"] = 1
    return vectors


LINE_PIPELINE = PipelineSpec(name="line", body=_line_body)


def line_embedding(
    graph: GraphLike,
    params: Optional[Union[LINEParams, int]] = None,
    seed: SeedLike = None,
    *,
    negative_samples: Optional[float] = None,
) -> EmbeddingResult:
    """LINE embedding via the T=1 matrix factorization.

    ``params`` is a :class:`LINEParams`, or (legacy form) a bare dimension
    int combined with the ``negative_samples`` keyword.
    """
    if params is None:
        params = LINEParams()
    elif not isinstance(params, LINEParams):
        params = LINEParams(dimension=int(params))
    if negative_samples is not None:
        params = replace(params, negative_samples=negative_samples)
    return run_pipeline(graph, LINE_PIPELINE, params, seed)
