"""HOPE [20] — Katz-proximity embedding via an implicit operator.

Cited by the paper (§2) in the SVD category.  HOPE factorizes the Katz
proximity ``S = Σ_{r≥1} β^r A^r = (I - βA)^{-1} βA`` with a generalized SVD.
Like the NRP baseline, ``S`` never needs materializing: we wrap the
truncated Katz series as a :class:`LinearOperator` (Horner SPMVs) and run
the shared randomized SVD — another demonstration of the "no entry-wise log
→ implicit factorization" shortcut the paper contrasts against.

For an undirected graph HOPE's source/target embeddings coincide up to the
SVD signs; we return ``U Σ^{1/2}`` as elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.embedding.base import (
    EmbeddingResult,
    PipelineContext,
    PipelineSpec,
    run_pipeline,
)
from repro.errors import FactorizationError
from repro.graph.compression import CompressedGraph
from repro.graph.csr import CSRGraph
from repro.linalg.operators import polynomial_operator
from repro.linalg.randomized_svd import embedding_from_svd, randomized_svd
from repro.utils.rng import SeedLike

GraphLike = Union[CSRGraph, CompressedGraph]


@dataclass(frozen=True)
class HOPEParams:
    """HOPE hyper-parameters.

    ``beta`` must stay below ``1/λ_max(A)`` for the Katz series to converge;
    ``beta=None`` auto-selects ``0.5 / λ_max`` (the common heuristic).
    ``order`` truncates the series (the error decays geometrically).
    """

    dimension: int = 128
    beta: Optional[float] = None
    order: int = 10


def katz_decay_rate(graph: GraphLike) -> float:
    """Largest adjacency eigenvalue ``λ_max`` (power iteration)."""
    if isinstance(graph, CompressedGraph):
        graph = graph.decompress()
    adjacency = graph.adjacency()
    n = graph.num_vertices
    if n == 0 or adjacency.nnz == 0:
        return 0.0
    rng = np.random.default_rng(0)
    vector = rng.random(n)
    vector /= np.linalg.norm(vector)
    value = 0.0
    for _ in range(100):
        nxt = adjacency @ vector
        norm = np.linalg.norm(nxt)
        if norm == 0:
            return 0.0
        nxt /= norm
        if abs(norm - value) < 1e-9 * max(1.0, norm):
            return float(norm)
        value, vector = norm, nxt
    return float(value)


def _hope_body(ctx: PipelineContext):
    graph, params = ctx.graph, ctx.params
    n = graph.num_vertices
    if params.order < 1:
        raise FactorizationError(f"order must be >= 1, got {params.order}")
    if isinstance(graph, CompressedGraph):
        graph = graph.decompress()

    with ctx.timer.stage("svd"):
        lam = katz_decay_rate(graph)
        if params.beta is None:
            beta = 0.5 / lam if lam > 0 else 0.5
        else:
            beta = params.beta
            if lam > 0 and beta * lam >= 1.0:
                raise FactorizationError(
                    f"beta={beta} does not converge: needs beta < 1/λ_max "
                    f"= {1.0 / lam:.4g}"
                )
        adjacency = graph.adjacency().tocsr()
        # S ≈ Σ_{r=1..order} (βA)^r  =  (Σ_{r=0..order-1} β^r A^r) · βA.
        coefficients = [beta**r for r in range(params.order)]
        series = polynomial_operator(adjacency, coefficients)
        katz = _compose(series, adjacency, beta, n)
        u, sigma, _ = randomized_svd(katz, params.dimension, seed=ctx.rng)
        vectors = embedding_from_svd(u, sigma)
    ctx.info.update({"beta": beta, "order": params.order, "lambda_max": lam})
    return vectors


HOPE_PIPELINE = PipelineSpec(name="hope", body=_hope_body)


def hope_embedding(
    graph: GraphLike,
    params: HOPEParams = HOPEParams(),
    seed: SeedLike = None,
) -> EmbeddingResult:
    """HOPE embedding from the implicit truncated Katz operator."""
    return run_pipeline(graph, HOPE_PIPELINE, params, seed)


def _compose(series, adjacency: sp.csr_matrix, beta: float, n: int):
    """LinearOperator for ``series @ (β A)`` (and its adjoint)."""
    import scipy.sparse.linalg as spla

    def matvec(x):
        return series @ (beta * (adjacency @ np.asarray(x)))

    def rmatvec(x):
        x = np.asarray(x)
        seeded = series.rmatmat(x) if x.ndim == 2 else series.rmatvec(x)
        return beta * (adjacency.T @ seeded)

    return spla.LinearOperator(
        shape=(n, n),
        matvec=matvec,
        rmatvec=rmatvec,
        matmat=matvec,
        rmatmat=rmatvec,
        dtype=np.float64,
    )
