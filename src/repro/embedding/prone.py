r"""ProNE / ProNE+ [40] — modulated-Laplacian factorization + propagation.

Step 1 factorizes a *sparse* matrix with one entry per edge (paper §3.1):

    M_uv = log( (A_uv / D_u) · Σ_j λ_j^α / (b · λ_v^α) ),   λ_v = Σ_i A_iv / D_i

— a normalized adjacency modulated by an α-smoothed negative-sampling term
(α = 0.75, b = 1 by default, the word2vec unigram smoothing).  Step 2 is the
Chebyshev spectral propagation shared with LightNE
(:mod:`repro.linalg.spectral`).

"ProNE+" in the paper is exactly this algorithm re-implemented on the
optimized substrate (GBBS + MKL); here both run through the same numpy code,
so the class doubles as ProNE+ with stage timing for Table 5.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, replace
from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.embedding.base import (
    EmbeddingResult,
    PipelineContext,
    PipelineSpec,
    run_pipeline,
)
from repro.errors import FactorizationError
from repro.graph.compression import CompressedGraph
from repro.graph.csr import CSRGraph
from repro.linalg.randomized_svd import embedding_from_svd, randomized_svd
from repro.linalg.spectral import spectral_propagation
from repro.utils.rng import SeedLike

GraphLike = Union[CSRGraph, CompressedGraph]


@dataclass(frozen=True)
class ProNEParams:
    """ProNE hyper-parameters (defaults follow the original release).

    ``propagate=False`` stops after the step-1 factorization (the ablation
    separating the two steps).  ``workers`` threads the dense-stage SPMMs
    (bit-identical at every width) and ``precision`` selects the
    ``"double"``/``"single"`` dtype policy of
    :mod:`repro.linalg.kernels` for factorization and propagation.
    ``backend="process"`` spills the propagation buffers to temp-file
    memmaps streamed through the chunked SPMM (bit-identical output).
    """

    dimension: int = 128
    alpha: float = 0.75
    negative_samples: float = 1.0
    propagate: bool = True
    propagation_order: int = 10
    mu: float = 0.2
    theta: float = 0.5
    workers: Optional[int] = None
    backend: str = "thread"
    precision: str = "double"


def prone_factorization_matrix(
    graph: GraphLike, *, alpha: float = 0.75, negative_samples: float = 1.0
) -> sp.csr_matrix:
    """The sparse modulated matrix ProNE factorizes (``m`` non-zeros).

    Entries are truncated at zero (``max(0, log ·)``) like Eq. (1) — negative
    log-values carry no co-occurrence signal.
    """
    if not 0.0 < alpha <= 1.0:
        raise FactorizationError(f"alpha must be in (0, 1], got {alpha}")
    if negative_samples <= 0:
        raise FactorizationError(
            f"negative_samples must be > 0, got {negative_samples}"
        )
    if isinstance(graph, CompressedGraph):
        graph = graph.decompress()
    adjacency = graph.adjacency()
    degrees = graph.weighted_degrees()
    safe = np.where(degrees > 0, degrees, 1.0)
    row_norm = sp.diags(1.0 / safe) @ adjacency  # A_uv / D_u
    # λ_v = Σ_i A_iv / D_i  — column sums of the row-normalized adjacency.
    lam = np.asarray(row_norm.sum(axis=0)).ravel()
    lam = np.where(lam > 0, lam, 1.0)
    smoothing = lam**alpha
    total = smoothing.sum()
    result = row_norm.tocsr(copy=True)
    cols = result.indices
    with np.errstate(divide="ignore"):
        logged = np.log(result.data) + np.log(total) - np.log(
            negative_samples * smoothing[cols]
        )
    result.data = np.maximum(0.0, logged)
    result.eliminate_zeros()
    return result


def _prone_body(ctx: PipelineContext):
    params = ctx.params
    with ctx.timer.stage("svd"):
        matrix = prone_factorization_matrix(
            ctx.graph, alpha=params.alpha, negative_samples=params.negative_samples
        )
        u, sigma, _ = randomized_svd(
            matrix, params.dimension, seed=ctx.rng,
            precision=params.precision, workers=params.workers,
        )
        vectors = embedding_from_svd(u, sigma)
    if params.propagate:
        with ctx.timer.stage("propagation"):
            vectors = spectral_propagation(
                ctx.graph,
                vectors,
                order=params.propagation_order,
                mu=params.mu,
                theta=params.theta,
                precision=params.precision,
                workers=params.workers,
                offload_dir=(
                    tempfile.gettempdir()
                    if getattr(params, "backend", "thread") == "process"
                    else None
                ),
            )
    ctx.info.update(
        {
            "alpha": params.alpha,
            "propagated": params.propagate,
            "precision": params.precision,
            "backend": getattr(params, "backend", "thread"),
        }
    )
    return vectors


PRONE_PIPELINE = PipelineSpec(name="prone", body=_prone_body)


def prone_embedding(
    graph: GraphLike,
    params: ProNEParams = ProNEParams(),
    seed: SeedLike = None,
    *,
    propagate: Optional[bool] = None,
) -> EmbeddingResult:
    """ProNE(+) embedding: sparse factorization, then spectral propagation.

    The ``propagate`` keyword is a legacy override of ``params.propagate``
    (``None`` defers to the dataclass).  Result method name is the canonical
    ``"prone"``; ``"prone+"`` remains a registered alias.
    """
    if propagate is not None and propagate != params.propagate:
        params = replace(params, propagate=propagate)
    return run_pipeline(graph, PRONE_PIPELINE, params, seed)
