"""Declarative registry of embedding methods — the single dispatch spine.

Before this module existed, ``cli.py``, ``experiments/runner.py`` and the
benchmark harness each kept an if/elif chain with diverging method names
(``prone`` vs ``prone+``, ``deepwalk`` vs ``graphvite``) and diverging knob
support.  Now each method is described once by a :class:`MethodSpec` —
canonical name, aliases, params dataclass, builder function, capability
flags — and every layer resolves names and builds params through
:func:`get_method` / :func:`make_params` / :func:`run_method`.

Registering a new method is a single :func:`register` call at the bottom of
this file (CI enforces that every ``*_embedding`` entry point in
``repro.embedding`` is registered).

Run ``python -m repro.embedding.registry`` to print the method table used in
``README.md``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from dataclasses import field as dataclass_field
from typing import Callable, Dict, List, Mapping, Tuple

from repro.embedding.base import EmbeddingResult
from repro.embedding.deepwalk import DeepWalkSGDParams, deepwalk_sgd_embedding
from repro.embedding.grarep import GraRepParams, grarep_embedding
from repro.embedding.hope import HOPEParams, hope_embedding
from repro.embedding.lightne import LightNEParams, lightne_embedding
from repro.embedding.line import LINEParams, line_embedding
from repro.embedding.netmf import NetMFParams, netmf_embedding
from repro.embedding.netsmf import NetSMFParams, netsmf_embedding
from repro.embedding.node2vec import Node2VecParams, node2vec_embedding
from repro.embedding.nrp import NRPParams, nrp_embedding
from repro.embedding.pbg import PBGParams, pbg_embedding
from repro.embedding.prone import ProNEParams, prone_embedding
from repro.embedding.sketchne import SketchNEParams, sketchne_embedding
from repro.errors import MethodParameterError, UnknownMethodError
from repro.utils.rng import SeedLike

# The "generic knobs" every dispatch layer may offer uniformly.  Each maps to
# the MethodSpec capability flag that gates it and (via _KNOB_FIELD) to the
# params-dataclass field it sets.
_KNOB_CAPABILITY: Dict[str, str] = {
    "window": "supports_window",
    "workers": "supports_workers",
    # The execution substrate rides the workers capability: every method
    # that accepts a pool width also accepts the thread/process choice.
    "backend": "supports_workers",
    "multiplier": "supports_multiplier",
    "sample_multiplier": "supports_multiplier",
    "propagate": "supports_propagate",
    "downsample": "supports_downsample",
    "precision": "supports_precision",
    "sparsifier": "supports_sparsifier",
    "factorizer": "supports_factorizer",
}
_KNOB_FIELD: Dict[str, str] = {"multiplier": "sample_multiplier"}


@dataclass(frozen=True)
class MethodSpec:
    """One embedding method, declaratively.

    Attributes
    ----------
    name:
        Canonical method name (what ``EmbeddingResult.method`` reports).
    builder:
        ``builder(graph, params, seed=...) -> EmbeddingResult``.
    params_type:
        The frozen params dataclass the builder accepts.
    description:
        One-line summary (README table, ``--help``).
    aliases:
        Alternate names accepted everywhere (paper-facing spellings like
        ``prone+`` / ``graphvite``).
    defaults:
        Field overrides applied on top of the dataclass defaults by
        :func:`make_params` (e.g. ``netmf-eigen`` pins ``strategy``).
    stages:
        The Table-5 stage names this method records on its ``StageTimer``.
    supports_window / supports_workers / supports_multiplier /
    supports_propagate / supports_downsample / supports_precision /
    supports_sparsifier / supports_factorizer:
        Capability flags gating the generic knobs shared across dispatch
        layers; unsupported knobs are rejected (``strict=True``) or dropped
        (``strict=False``) by :func:`make_params`.  ``precision`` selects
        the dense-kernel dtype policy (``"double"``/``"single"``) of
        :mod:`repro.linalg.kernels`; ``sparsifier`` selects the count-matrix
        backend (``"path"``/``"ppr"``) of :mod:`repro.sparsifier.backends`;
        ``factorizer`` selects the factorization backend
        (``"rsvd"``/``"single_pass"``) of :mod:`repro.linalg.single_pass`.
    """

    name: str
    builder: Callable[..., EmbeddingResult]
    params_type: type
    description: str = ""
    aliases: Tuple[str, ...] = ()
    defaults: Mapping[str, object] = dataclass_field(default_factory=dict)
    stages: Tuple[str, ...] = ()
    supports_window: bool = False
    supports_workers: bool = False
    supports_multiplier: bool = False
    supports_propagate: bool = False
    supports_downsample: bool = False
    supports_precision: bool = False
    supports_sparsifier: bool = False
    supports_factorizer: bool = False

    def supports(self, knob: str) -> bool:
        """Whether the generic ``knob`` applies to this method."""
        capability = _KNOB_CAPABILITY.get(knob)
        return bool(getattr(self, capability)) if capability else False

    @property
    def capabilities(self) -> Dict[str, bool]:
        """Generic knob -> supported, for flag derivation and docs."""
        return {
            "window": self.supports_window,
            "workers": self.supports_workers,
            "multiplier": self.supports_multiplier,
            "propagate": self.supports_propagate,
            "downsample": self.supports_downsample,
            "precision": self.supports_precision,
            "sparsifier": self.supports_sparsifier,
            "factorizer": self.supports_factorizer,
        }

    @property
    def param_fields(self) -> Tuple[str, ...]:
        """Field names of the params dataclass."""
        return tuple(f.name for f in dataclasses.fields(self.params_type))


_REGISTRY: Dict[str, MethodSpec] = {}
_ALIASES: Dict[str, str] = {}


def register(spec: MethodSpec) -> MethodSpec:
    """Add ``spec`` to the registry; rejects name/alias collisions."""
    for name in (spec.name, *spec.aliases):
        if name in _REGISTRY or name in _ALIASES:
            raise ValueError(f"method name {name!r} already registered")
    _REGISTRY[spec.name] = spec
    for alias in spec.aliases:
        _ALIASES[alias] = spec.name
    return spec


def canonical_name(name: str) -> str:
    """Resolve ``name`` (canonical or alias) to the canonical method name."""
    if name in _REGISTRY:
        return name
    if name in _ALIASES:
        return _ALIASES[name]
    raise UnknownMethodError(
        f"unknown method {name!r}; known methods: {', '.join(method_names())}"
    )


def get_method(name: str) -> MethodSpec:
    """Look up a :class:`MethodSpec` by canonical name or alias."""
    return _REGISTRY[canonical_name(name)]


def list_methods() -> List[MethodSpec]:
    """All registered specs, in registration order."""
    return list(_REGISTRY.values())


def method_names(include_aliases: bool = True) -> List[str]:
    """Canonical names (registration order), optionally plus aliases."""
    names = list(_REGISTRY)
    if include_aliases:
        names.extend(_ALIASES)
    return names


def make_params(name: str, *, strict: bool = True, **overrides: object):
    """Build a validated params dataclass for ``name`` from plain values.

    ``overrides`` values of ``None`` mean "not set" and are skipped (so CLI
    flags with ``default=None`` sentinels pass through verbatim).  A generic
    knob (``window`` / ``workers`` / ``multiplier`` / ``propagate`` /
    ``downsample``) the method does not support raises
    :class:`MethodParameterError` when ``strict`` (the CLI) and is silently
    dropped otherwise (comparison sweeps sharing one knob set across
    methods).  Names that are neither generic knobs nor fields of the params
    dataclass always raise.
    """
    spec = get_method(name)
    fields = set(spec.param_fields)
    merged: Dict[str, object] = dict(spec.defaults)
    for key, value in overrides.items():
        if value is None:
            continue
        field_name = _KNOB_FIELD.get(key, key)
        if key in _KNOB_CAPABILITY and not spec.supports(key):
            if strict:
                raise MethodParameterError(
                    f"method {spec.name!r} does not support {key!r} "
                    f"(supported knobs: "
                    f"{', '.join(k for k, on in spec.capabilities.items() if on) or 'none'})"
                )
            continue
        if field_name not in fields:
            raise MethodParameterError(
                f"method {spec.name!r} ({spec.params_type.__name__}) has no "
                f"parameter {field_name!r}"
            )
        merged[field_name] = value
    return spec.params_type(**merged)


def run_method(
    name: str,
    graph,
    *,
    seed: SeedLike = None,
    strict: bool = True,
    **overrides: object,
) -> EmbeddingResult:
    """Resolve ``name``, build params from ``overrides``, run the builder."""
    spec = get_method(name)
    params = make_params(name, strict=strict, **overrides)
    return spec.builder(graph, params, seed=seed)


def format_methods_table() -> str:
    """The README's method table, generated from :func:`list_methods`."""
    rows = [
        "| method | aliases | knobs | stages (Table 5) | description |",
        "| --- | --- | --- | --- | --- |",
    ]
    for spec in list_methods():
        aliases = ", ".join(f"`{a}`" for a in spec.aliases) or "—"
        knobs = ", ".join(k for k, on in spec.capabilities.items() if on) or "—"
        stages = ", ".join(spec.stages)
        rows.append(
            f"| `{spec.name}` | {aliases} | {knobs} | {stages} "
            f"| {spec.description} |"
        )
    return "\n".join(rows)


register(
    MethodSpec(
        name="lightne",
        builder=lightne_embedding,
        params_type=LightNEParams,
        description="the paper's system: downsampled sparsifier + rSVD + spectral propagation",
        stages=("sparsifier", "svd", "propagation"),
        supports_window=True,
        supports_workers=True,
        supports_multiplier=True,
        supports_propagate=True,
        supports_downsample=True,
        supports_precision=True,
        supports_sparsifier=True,
        supports_factorizer=True,
    )
)
register(
    MethodSpec(
        name="sketchne",
        builder=sketchne_embedding,
        params_type=SketchNEParams,
        description="SketchNE/NetMF+: sparse-sign sketch, single-pass factorization, propagation",
        aliases=("netmf+", "netmfplus"),
        stages=("sparsifier", "svd", "propagation"),
        supports_window=True,
        supports_workers=True,
        supports_multiplier=True,
        supports_propagate=True,
        supports_downsample=True,
        supports_precision=True,
        supports_sparsifier=True,
        supports_factorizer=True,
    )
)
register(
    MethodSpec(
        name="netsmf",
        builder=netsmf_embedding,
        params_type=NetSMFParams,
        description="NetSMF baseline: PathSampling sparsifier + rSVD, no downsampling/propagation",
        stages=("sparsifier", "svd"),
        supports_window=True,
        supports_workers=True,
        supports_multiplier=True,
        supports_precision=True,
        supports_sparsifier=True,
        supports_factorizer=True,
    )
)
register(
    MethodSpec(
        name="prone",
        builder=prone_embedding,
        params_type=ProNEParams,
        description="ProNE(+): modulated-Laplacian factorization + Chebyshev propagation",
        aliases=("prone+",),
        stages=("svd", "propagation"),
        supports_workers=True,
        supports_propagate=True,
        supports_precision=True,
    )
)
register(
    MethodSpec(
        name="netmf",
        builder=netmf_embedding,
        params_type=NetMFParams,
        description="exact dense NetMF (small graphs; the sparsifier's oracle)",
        stages=("matrix", "svd"),
        supports_window=True,
        supports_workers=True,
        supports_precision=True,
        supports_factorizer=True,
    )
)
register(
    MethodSpec(
        name="netmf-eigen",
        builder=netmf_embedding,
        params_type=NetMFParams,
        description="NetMF-large: truncated-eigenpair approximation of Eq. (1)",
        defaults={"strategy": "eigen"},
        stages=("matrix", "svd"),
        supports_window=True,
        supports_workers=True,
        supports_precision=True,
        supports_factorizer=True,
    )
)
register(
    MethodSpec(
        name="line",
        builder=line_embedding,
        params_type=LINEParams,
        description="LINE: the T=1 NetMF matrix, factorized sparsely",
        stages=("matrix", "svd"),
    )
)
register(
    MethodSpec(
        name="deepwalk",
        builder=deepwalk_sgd_embedding,
        params_type=DeepWalkSGDParams,
        description="DeepWalk trained by skip-gram SGD (the GraphVite stand-in)",
        aliases=("graphvite", "deepwalk-sgd"),
        stages=("walks", "sgd"),
        supports_window=True,
    )
)
register(
    MethodSpec(
        name="node2vec",
        builder=node2vec_embedding,
        params_type=Node2VecParams,
        description="node2vec: p/q-biased second-order walks + skip-gram SGD",
        stages=("walks", "sgd"),
        supports_window=True,
    )
)
register(
    MethodSpec(
        name="pbg",
        builder=pbg_embedding,
        params_type=PBGParams,
        description="PyTorch-BigGraph stand-in: Adagrad edge-ranking loss (E1 comparator)",
        defaults={"epochs": 20},
        stages=("sgd",),
    )
)
register(
    MethodSpec(
        name="nrp",
        builder=nrp_embedding,
        params_type=NRPParams,
        description="NRP/NPR: implicit PPR-polynomial factorization (no entry-wise log)",
        stages=("svd",),
        supports_workers=True,
        supports_precision=True,
        supports_factorizer=True,
    )
)
register(
    MethodSpec(
        name="grarep",
        builder=grarep_embedding,
        params_type=GraRepParams,
        description="GraRep: concatenated per-step log-transition factorizations",
        stages=("matrix+svd",),
    )
)
register(
    MethodSpec(
        name="hope",
        builder=hope_embedding,
        params_type=HOPEParams,
        description="HOPE: implicit truncated-Katz operator factorization",
        stages=("svd",),
    )
)


if __name__ == "__main__":
    print(format_methods_table())
