"""Embedding algorithms: LightNE, its two building blocks (NetSMF, ProNE),
the exact NetMF reference, and the baseline systems the paper compares to.

All methods run on the shared pipeline skeleton in
:mod:`repro.embedding.base` and are dispatched by name through the
declarative registry in :mod:`repro.embedding.registry`."""

from repro.embedding.base import (
    EmbeddingResult,
    PipelineContext,
    PipelineSpec,
    run_pipeline,
)
from repro.embedding.netmf import NetMFParams, netmf_embedding, netmf_matrix_dense
from repro.embedding.netsmf import NetSMFParams, netsmf_embedding
from repro.embedding.prone import ProNEParams, prone_embedding
from repro.embedding.lightne import LightNEParams, lightne_embedding
from repro.embedding.sketchne import SketchNEParams, sketchne_embedding
from repro.embedding.line import LINEParams, line_embedding
from repro.embedding.deepwalk import DeepWalkSGDParams, deepwalk_sgd_embedding
from repro.embedding.pbg import PBGParams, pbg_embedding
from repro.embedding.nrp import NRPParams, nrp_embedding
from repro.embedding.node2vec import Node2VecParams, node2vec_embedding
from repro.embedding.grarep import GraRepParams, grarep_embedding
from repro.embedding.hope import HOPEParams, hope_embedding
from repro.embedding.registry import (
    MethodSpec,
    canonical_name,
    get_method,
    list_methods,
    make_params,
    method_names,
    register,
    run_method,
)

__all__ = [
    "Node2VecParams",
    "node2vec_embedding",
    "GraRepParams",
    "grarep_embedding",
    "HOPEParams",
    "hope_embedding",
    "EmbeddingResult",
    "PipelineContext",
    "PipelineSpec",
    "run_pipeline",
    "NetMFParams",
    "netmf_embedding",
    "netmf_matrix_dense",
    "NetSMFParams",
    "netsmf_embedding",
    "ProNEParams",
    "prone_embedding",
    "LightNEParams",
    "lightne_embedding",
    "SketchNEParams",
    "sketchne_embedding",
    "LINEParams",
    "line_embedding",
    "DeepWalkSGDParams",
    "deepwalk_sgd_embedding",
    "PBGParams",
    "pbg_embedding",
    "NRPParams",
    "nrp_embedding",
    "MethodSpec",
    "canonical_name",
    "get_method",
    "list_methods",
    "make_params",
    "method_names",
    "register",
    "run_method",
]
