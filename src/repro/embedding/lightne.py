"""LightNE — the paper's system (Sections 3.2 and 4).

Pipeline (Figure 1):

1. **Parallel sparsifier construction** — downsampled per-edge PathSampling
   (Algorithm 2) aggregated by the sparse parallel hash table;
2. **Parallel randomized SVD** (Algorithm 3) of the trunc-log NetMF matrix
   estimator, ``X = U Σ^{1/2}``;
3. **Spectral propagation** — ProNE's Chebyshev filter on ``X``.

Stage wall-clock is recorded under the Table-5 names
(``sparsifier`` / ``svd`` / ``propagation``).  The paper's named
configurations are exposed as constructors:
``LightNEParams.small(T)`` (M = 0.1·T·m) and ``LightNEParams.large(T)``
(M = 20·T·m).  For very large graphs the paper sets ``T=2, d=32`` and skips
propagation — pass ``propagate=False``.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, replace
from typing import Optional, Union

from repro.embedding.base import (
    EmbeddingResult,
    PipelineContext,
    PipelineSpec,
    run_pipeline,
)
from repro.graph.compression import CompressedGraph
from repro.graph.csr import CSRGraph
from repro.linalg.randomized_svd import embedding_from_svd
from repro.linalg.single_pass import factorize
from repro.linalg.spectral import spectral_propagation
from repro.sparsifier.backends import build_sparsifier
from repro.sparsifier.builder import sparsifier_to_netmf_matrix
from repro.sparsifier.path_sampling import PathSamplingConfig
from repro.telemetry import health
from repro.utils.log import get_logger
from repro.utils.rng import SeedLike

GraphLike = Union[CSRGraph, CompressedGraph]

logger = get_logger(__name__)


@dataclass(frozen=True)
class LightNEParams:
    """LightNE hyper-parameters.

    Attributes
    ----------
    dimension:
        Embedding dimension ``d`` (paper: 128 for most graphs, 32 for the
        100-billion-edge ones).
    window:
        Context window ``T``; the paper cross-validates 1/5/10 by task.
    sample_multiplier:
        ``M = multiplier · T · m`` — 0.1 for LightNE-Small, 20 for
        LightNE-Large in the OAG study.
    negative_samples:
        The ``b`` of Eq. (1).
    downsample:
        The degree-based downsampling coin (the paper's new contribution;
        turn off only for ablations).
    downsample_constant:
        The ``C`` in ``p_e = min(1, C·A_uv(1/d_u + 1/d_v))``; ``None`` means
        ``log n``.
    propagate / propagation_order / mu / theta:
        Spectral-propagation controls (step 2).
    aggregator:
        ``"hash"`` (shared sparse parallel hashing, the paper's choice),
        ``"hash-sharded"`` (per-processor tables, merged) or ``"sort"``.
    sparsifier:
        Sparsifier backend building the count matrix: ``"path"`` (default,
        the paper's downsampled PathSampling — bit-identical to the
        pre-backend-layer pipeline) or ``"ppr"`` (PSNE-style push-based PPR
        proximity; same estimator contract, deterministic walk mass instead
        of Monte-Carlo draws).  See :mod:`repro.sparsifier.backends`.
    workers:
        Thread-pool width for sparsifier construction *and* the dense-stage
        SPMMs (randomized SVD, spectral propagation); ``None`` (default)
        resolves to :func:`repro.utils.parallel.default_workers`.  Both the
        sparsifier and the dense kernels are bit-identical for every worker
        count given the same ``seed`` and ``batch_size``.
    backend:
        Execution substrate: ``"thread"`` (default, all in-RAM) or
        ``"process"`` — the out-of-core mode.  With ``"process"``, sampling
        slabs run in worker processes (reopening a memmapped CSR v2 graph
        when the input was loaded that way), sharded aggregation goes
        through ``multiprocessing.shared_memory``, and the propagation
        stage's ``n×d`` buffers spill to temp-file memmaps streamed through
        the chunked SPMM.  Embeddings are bit-identical to the thread
        backend at every worker count.
    precision:
        Dense-kernel dtype policy (``"double"``/``"single"``), mirroring the
        paper's single-precision MKL routines: ``"single"`` keeps the whole
        factorize + propagate path in float32 (float64 accumulation only in
        the small reductions), roughly halving dense-stage peak memory.
        ``"double"`` (default) is bit-identical to the legacy float64 path.
    factorizer:
        Factorization backend for the NetMF matrix: ``"rsvd"`` (default,
        the paper's Algorithm 3 — bit-identical to the pre-knob pipeline)
        or ``"single_pass"`` (the SketchNE-style sparse-sign sketched
        factorization, one streamed pass over the matrix; see
        :mod:`repro.linalg.single_pass`).
    batch_size:
        Maximum walk-slab size during sampling (peak-memory bound).
    """

    dimension: int = 128
    window: int = 10
    sample_multiplier: float = 1.0
    negative_samples: float = 1.0
    downsample: bool = True
    downsample_constant: Optional[float] = None
    propagate: bool = True
    propagation_order: int = 10
    mu: float = 0.2
    theta: float = 0.5
    aggregator: str = "hash"
    sparsifier: str = "path"
    workers: Optional[int] = None
    backend: str = "thread"
    precision: str = "double"
    factorizer: str = "rsvd"
    batch_size: int = 2_000_000

    @staticmethod
    def small(window: int = 10, dimension: int = 128) -> "LightNEParams":
        """LightNE-Small: fewest samples, ``M = 0.1·T·m`` (paper §5.2.3)."""
        return LightNEParams(
            dimension=dimension, window=window, sample_multiplier=0.1
        )

    @staticmethod
    def large(window: int = 10, dimension: int = 128) -> "LightNEParams":
        """LightNE-Large: most samples, ``M = 20·T·m`` (paper §5.2.3)."""
        return LightNEParams(
            dimension=dimension, window=window, sample_multiplier=20.0
        )

    @staticmethod
    def very_large(dimension: int = 32) -> "LightNEParams":
        """The very-large-graph setting: T=2, d=32, no propagation (§5.3)."""
        return LightNEParams(
            dimension=dimension, window=2, sample_multiplier=1.0, propagate=False
        )

    def with_multiplier(self, multiplier: float) -> "LightNEParams":
        """Copy with a different sample multiplier (Figure 2 sweeps)."""
        return replace(self, sample_multiplier=multiplier)


def _lightne_body(ctx: PipelineContext):
    graph, params = ctx.graph, ctx.params
    config = PathSamplingConfig(
        window=params.window,
        num_samples=PathSamplingConfig.samples_for_multiplier(
            graph, params.window, params.sample_multiplier
        ),
        downsample=params.downsample,
        downsample_constant=params.downsample_constant,
    )
    logger.debug(
        "lightne: n=%d m=%d T=%d M=%d downsample=%s",
        graph.num_vertices, graph.num_edges, config.window,
        config.num_samples, config.downsample,
    )
    ctx.span.set_attribute("window", params.window)
    ctx.span.set_attribute("sample_multiplier", params.sample_multiplier)
    ctx.span.set_attribute("aggregator", params.aggregator)
    ctx.span.set_attribute("sparsifier", params.sparsifier)
    sparsifier = build_sparsifier(
        graph, config, ctx.rng, sparsifier=params.sparsifier,
        aggregator=params.aggregator, timer=ctx.timer,
        workers=params.workers, backend=params.backend,
        batch_size=params.batch_size,
    )
    logger.debug(
        "lightne: sparsifier nnz=%d from %d draws (%.1f%% of draws kept "
        "distinct)", sparsifier.nnz, sparsifier.num_draws,
        100.0 * sparsifier.nnz / max(1, sparsifier.num_draws),
    )
    with ctx.timer.stage("svd", rank=params.dimension):
        matrix = sparsifier_to_netmf_matrix(
            graph, sparsifier, negative_samples=params.negative_samples
        )
        health.checkpoint("svd.netmf_matrix", matrix)
        # The trunc-log NetMF matrix is symmetric by construction, so the
        # single-pass backend gets both sketched products from one pass.
        u, sigma, _ = factorize(
            matrix, params.dimension, factorizer=params.factorizer,
            seed=ctx.rng, precision=params.precision,
            workers=params.workers, symmetric=True,
        )
        vectors = embedding_from_svd(u, sigma)
        health.checkpoint("svd", vectors)
    if params.propagate:
        with ctx.timer.stage("propagation", order=params.propagation_order):
            # Out-of-core mode spills the filter's ping-pong buffers to
            # unlinked temp-file memmaps (bit-transparent; see
            # chebyshev_gaussian_filter).
            offload_dir = (
                tempfile.gettempdir() if params.backend == "process" else None
            )
            vectors = spectral_propagation(
                graph,
                vectors,
                order=params.propagation_order,
                mu=params.mu,
                theta=params.theta,
                precision=params.precision,
                workers=params.workers,
                offload_dir=offload_dir,
            )
        health.checkpoint("propagation", vectors)
    ctx.span.set_attribute("sparsifier_nnz", sparsifier.nnz)
    ctx.info.update(
        {
            "window": params.window,
            "sample_multiplier": params.sample_multiplier,
            "num_draws": sparsifier.num_draws,
            "sparsifier": params.sparsifier,
            "sparsifier_nnz": sparsifier.nnz,
            "downsample": params.downsample,
            "propagated": params.propagate,
            "precision": params.precision,
            "factorizer": params.factorizer,
            "backend": params.backend,
            "workers": int(sparsifier.stats.get("workers", 1)),
            "sparsifier_batches": int(sparsifier.stats.get("batches", 0)),
            "samples_per_sec": float(sparsifier.stats.get("samples_per_sec", 0.0)),
            "peak_table_bytes": int(sparsifier.stats.get("peak_table_bytes", 0)),
        }
    )
    return vectors


LIGHTNE_PIPELINE = PipelineSpec(name="lightne", body=_lightne_body)


def lightne_embedding(
    graph: GraphLike,
    params: LightNEParams = LightNEParams(),
    seed: SeedLike = None,
) -> EmbeddingResult:
    """Run the full LightNE pipeline on ``graph``.

    Returns an :class:`EmbeddingResult` whose ``timer`` holds the Table-5
    stage breakdown and whose ``info`` records sampling statistics
    (draw count, sparsifier nnz, downsampling state).

    When telemetry is enabled (:func:`repro.telemetry.enable`) the run is
    traced under a ``lightne`` root span — stages, per-batch sampling and
    per-iteration SVD/propagation children — and ``info["telemetry"]``
    carries a snapshot of the metrics registry.
    """
    return run_pipeline(graph, LIGHTNE_PIPELINE, params, seed)


def refresh_embedding(
    graph: GraphLike,
    previous: EmbeddingResult,
    params: LightNEParams = LightNEParams(),
    seed: SeedLike = None,
) -> EmbeddingResult:
    """Warm-restart re-embedding sketch (paper §6 future work: dynamic graphs).

    Re-runs the sparsifier + SVD on the updated ``graph`` and aligns the new
    embedding to ``previous`` by an orthogonal Procrustes rotation over the
    common vertex prefix, so downstream consumers see a stable coordinate
    frame across refreshes.
    """
    import numpy as np

    result = lightne_embedding(graph, params, seed)
    shared = min(previous.num_vertices, result.num_vertices)
    if shared == 0 or previous.dimension != result.dimension:
        return result
    # Procrustes: rotate new -> old over the shared prefix.
    m = result.vectors[:shared].T @ previous.vectors[:shared]
    u, _, vt = np.linalg.svd(m)
    rotation = u @ vt
    result.vectors = result.vectors @ rotation
    result.info["aligned_to_previous"] = True
    return result
