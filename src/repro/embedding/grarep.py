"""GraRep [2] — per-step transition-matrix factorization, concatenated.

Cited by the paper (§2) as an SVD-category ancestor of NetMF.  GraRep
factorizes, for each step ``k = 1..K``, the positive log co-occurrence
matrix of the ``k``-step transition matrix ``P^k`` and concatenates the
per-step embeddings.  It materializes each ``P^k`` densely — the exact
scalability wall NetSMF/LightNE exist to remove — so, like exact NetMF, it
is limited to small graphs and doubles as a family baseline for Figure 4
style comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.embedding.base import (
    EmbeddingResult,
    PipelineContext,
    PipelineSpec,
    run_pipeline,
)
from repro.embedding.netmf import DENSE_LIMIT
from repro.errors import FactorizationError
from repro.graph.compression import CompressedGraph
from repro.graph.csr import CSRGraph
from repro.linalg.randomized_svd import embedding_from_svd, randomized_svd
from repro.utils.rng import SeedLike

GraphLike = Union[CSRGraph, CompressedGraph]


@dataclass(frozen=True)
class GraRepParams:
    """GraRep hyper-parameters.

    ``dimension`` is the total output width; each of the ``steps`` blocks
    contributes ``dimension // steps`` columns (the original paper's
    per-step ``d``).
    """

    dimension: int = 128
    steps: int = 4
    negative_samples: float = 1.0


def _grarep_body(ctx: PipelineContext):
    graph, params, rng = ctx.graph, ctx.params, ctx.rng
    n = graph.num_vertices
    if params.steps < 1:
        raise FactorizationError(f"steps must be >= 1, got {params.steps}")
    if params.dimension < params.steps:
        raise FactorizationError(
            f"dimension {params.dimension} < steps {params.steps}"
        )
    if n > DENSE_LIMIT:
        raise FactorizationError(
            f"GraRep materializes dense P^k; limited to {DENSE_LIMIT} vertices"
        )
    if isinstance(graph, CompressedGraph):
        graph = graph.decompress()

    per_step = params.dimension // params.steps
    remainder = params.dimension - per_step * params.steps
    adjacency = graph.adjacency().toarray()
    degrees = graph.weighted_degrees()
    safe = np.where(degrees > 0, degrees, 1.0)
    transition = adjacency / safe[:, None]

    blocks = []
    with ctx.timer.stage("matrix+svd"):
        power = np.eye(n)
        for k in range(params.steps):
            power = power @ transition
            # Positive log shifted by the column marginals (GraRep's
            # log(P_ij / sum_i P_ij) - log(beta), beta = 1/n by convention).
            column_mass = power.sum(axis=0)
            column_mass[column_mass <= 0] = 1.0
            with np.errstate(divide="ignore"):
                logged = np.log(np.maximum(power / column_mass[None, :], 1e-300))
            matrix = np.maximum(
                0.0, logged - np.log(params.negative_samples / n)
            )
            width = per_step + (remainder if k == params.steps - 1 else 0)
            width = min(width, n)
            u, sigma, _ = randomized_svd(matrix, width, seed=rng)
            blocks.append(embedding_from_svd(u, sigma))
    ctx.info.update({"steps": params.steps, "per_step_dim": per_step})
    return np.hstack(blocks)


GRAREP_PIPELINE = PipelineSpec(name="grarep", body=_grarep_body)


def grarep_embedding(
    graph: GraphLike,
    params: GraRepParams = GraRepParams(),
    seed: SeedLike = None,
) -> EmbeddingResult:
    """Compute GraRep: concatenated per-step log-transition factorizations."""
    return run_pipeline(graph, GRAREP_PIPELINE, params, seed)
