r"""Exact (dense) NetMF — the reference the sparsified pipeline approximates.

NetMF [23] factorizes (paper Eq. 1)

    M = trunc_log( vol(G)/(bT) · Σ_{r=1}^{T} (D⁻¹A)^r D⁻¹ )

and embeds with the top-``d`` SVD, ``X = U_d Σ_d^{1/2}``.  Constructing ``M``
densifies at ``O(n²)`` memory, which is exactly the bottleneck motivating
NetSMF/LightNE — so this implementation is for small graphs and as a test
oracle for the sparsifier's estimator.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Union

import numpy as np

from repro.embedding.base import (
    EmbeddingResult,
    PipelineContext,
    PipelineSpec,
    run_pipeline,
)
from repro.errors import FactorizationError
from repro.graph.compression import CompressedGraph
from repro.graph.csr import CSRGraph
from repro.linalg.randomized_svd import embedding_from_svd
from repro.linalg.single_pass import factorize
from repro.utils.rng import SeedLike

GraphLike = Union[CSRGraph, CompressedGraph]

DENSE_LIMIT = 20_000


@dataclass(frozen=True)
class NetMFParams:
    """NetMF hyper-parameters.

    ``strategy="exact"`` materializes Eq. (1) exactly (NetMF-small);
    ``strategy="eigen"`` uses the truncated-eigenpair approximation
    (NetMF-large) with ``eigen_rank`` pairs.  The registry exposes both as
    separate methods (``netmf`` / ``netmf-eigen``) differing only in the
    ``strategy`` default.  ``workers`` / ``precision`` control the SVD's
    kernel layer (:mod:`repro.linalg.kernels`); ``precision="single"``
    halves the dense matrix's footprint during factorization.  ``backend``
    is accepted for CLI uniformity (dense NetMF has no out-of-core stage —
    the substrate knob is a no-op here).  ``factorizer`` picks the
    factorization backend (``"rsvd"`` default / ``"single_pass"``; see
    :mod:`repro.linalg.single_pass`).
    """

    dimension: int = 128
    window: int = 10
    negative_samples: float = 1.0
    strategy: str = "exact"
    eigen_rank: int = 256
    workers: Optional[int] = None
    backend: str = "thread"
    precision: str = "double"
    factorizer: str = "rsvd"


def netmf_matrix_dense(
    graph: GraphLike, window: int = 10, negative_samples: float = 1.0
) -> np.ndarray:
    """Materialize Eq. (1) densely (small graphs only).

    Raises
    ------
    FactorizationError
        When the graph exceeds ``DENSE_LIMIT`` vertices (the memory wall the
        paper describes) or parameters are invalid.
    """
    if window < 1:
        raise FactorizationError(f"window T must be >= 1, got {window}")
    if negative_samples <= 0:
        raise FactorizationError(
            f"negative_samples must be > 0, got {negative_samples}"
        )
    n = graph.num_vertices
    if n > DENSE_LIMIT:
        raise FactorizationError(
            f"dense NetMF limited to {DENSE_LIMIT} vertices; use NetSMF/LightNE"
        )
    if isinstance(graph, CompressedGraph):
        graph = graph.decompress()
    adjacency = graph.adjacency().toarray()
    degrees = graph.weighted_degrees()
    safe = np.where(degrees > 0, degrees, 1.0)
    walk = adjacency / safe[:, None]  # D⁻¹A
    power = np.eye(n)
    accum = np.zeros((n, n))
    for _ in range(window):
        power = power @ walk
        accum += power
    matrix = (graph.volume / (negative_samples * window)) * (accum / safe[None, :])
    return np.maximum(0.0, np.log(np.maximum(matrix, 1e-300)))


def netmf_matrix_eigen(
    graph: GraphLike,
    window: int = 10,
    negative_samples: float = 1.0,
    *,
    rank: int = 256,
) -> np.ndarray:
    """NetMF-large's approximation of Eq. (1) via truncated eigenpairs.

    Uses the identity ``(D⁻¹A)^r D⁻¹ = D^{-1/2} Â^r D^{-1/2}`` with
    ``Â = D^{-1/2} A D^{-1/2}``: take the top-``rank`` eigenpairs of ``Â``,
    filter the eigenvalues through the window polynomial
    ``f(λ) = (1/T) Σ_{r=1..T} λ^r`` (clipped at 0, as NetMF does), and
    reassemble before the entry-wise trunc-log.  Time drops from
    ``O(T·n³)`` to ``O(n²·rank)``; memory is still ``O(n²)`` because the
    log requires the dense entries — exactly the wall NetSMF removes.
    """
    if window < 1:
        raise FactorizationError(f"window T must be >= 1, got {window}")
    if negative_samples <= 0:
        raise FactorizationError(
            f"negative_samples must be > 0, got {negative_samples}"
        )
    n = graph.num_vertices
    if n > DENSE_LIMIT:
        raise FactorizationError(
            f"NetMF-large still materializes n x n; limited to {DENSE_LIMIT}"
        )
    if isinstance(graph, CompressedGraph):
        graph = graph.decompress()
    rank = min(rank, n - 1)
    if rank < 1:
        raise FactorizationError("graph too small for eigen approximation")
    import scipy.sparse as sp
    import scipy.sparse.linalg as spla

    adjacency = graph.adjacency()
    degrees = graph.weighted_degrees()
    safe = np.where(degrees > 0, degrees, 1.0)
    inv_sqrt = sp.diags(safe**-0.5)
    a_hat = (inv_sqrt @ adjacency @ inv_sqrt).tocsr()
    vals, vecs = spla.eigsh(a_hat, k=rank, which="LA")
    # Window filter with NetMF's non-negativity clip on the filtered values.
    powers = np.zeros_like(vals)
    term = np.ones_like(vals)
    for _ in range(window):
        term = term * vals
        powers += term
    filtered = np.maximum(powers / window, 0.0)
    half = (inv_sqrt @ vecs) * np.sqrt(filtered)[None, :]
    matrix = (graph.volume / negative_samples) * (half @ half.T)
    return np.maximum(0.0, np.log(np.maximum(matrix, 1e-300)))


def _netmf_body(ctx: PipelineContext):
    params = ctx.params
    with ctx.timer.stage("matrix"):
        if params.strategy == "exact":
            matrix = netmf_matrix_dense(
                ctx.graph, params.window, params.negative_samples
            )
        else:
            matrix = netmf_matrix_eigen(
                ctx.graph,
                params.window,
                params.negative_samples,
                rank=params.eigen_rank,
            )
    with ctx.timer.stage("svd"):
        # Eq. (1)'s trunc-log matrix is symmetric for both strategies.
        u, sigma, _ = factorize(
            matrix, params.dimension, factorizer=params.factorizer,
            seed=ctx.rng, precision=params.precision,
            workers=params.workers, symmetric=True,
        )
        vectors = embedding_from_svd(u, sigma)
    ctx.info.update(
        {
            "window": params.window,
            "negative_samples": params.negative_samples,
            "strategy": params.strategy,
            "factorizer": params.factorizer,
        }
    )
    return vectors


NETMF_PIPELINE = PipelineSpec(name="netmf", body=_netmf_body)
NETMF_EIGEN_PIPELINE = PipelineSpec(name="netmf-eigen", body=_netmf_body)


def netmf_embedding(
    graph: GraphLike,
    params: Optional[Union[NetMFParams, int]] = None,
    *,
    window: Optional[int] = None,
    negative_samples: Optional[float] = None,
    strategy: Optional[str] = None,
    eigen_rank: Optional[int] = None,
    seed: SeedLike = None,
) -> EmbeddingResult:
    """NetMF embedding.

    ``params`` is a :class:`NetMFParams`, or (legacy form) a bare dimension
    int combined with the keyword overrides.  The result's method name
    follows the resolved strategy: ``"netmf"`` or ``"netmf-eigen"``.
    """
    if params is None:
        params = NetMFParams()
    elif not isinstance(params, NetMFParams):
        params = NetMFParams(dimension=int(params))
    overrides = {
        name: value
        for name, value in (
            ("window", window),
            ("negative_samples", negative_samples),
            ("strategy", strategy),
            ("eigen_rank", eigen_rank),
        )
        if value is not None
    }
    if overrides:
        params = replace(params, **overrides)
    if params.strategy not in ("exact", "eigen"):
        raise FactorizationError(
            f"strategy must be 'exact' or 'eigen', got {params.strategy!r}"
        )
    spec = NETMF_PIPELINE if params.strategy == "exact" else NETMF_EIGEN_PIPELINE
    return run_pipeline(graph, spec, params, seed)
