#!/usr/bin/env python
"""Reproduce the Figure-2 efficiency–effectiveness trade-off interactively.

Sweeps LightNE's sample budget M from 0.1Tm to 20Tm on a labeled synthetic
graph and prints the (time, Micro-F1) curve, plus the two anchor baselines
from the paper's figure: ProNE+ (fast, lower quality ceiling) and NetSMF
(slow at large budgets, no propagation).

Run:  python examples/tradeoff_sweep.py
"""

from __future__ import annotations

from repro import (
    LightNEParams,
    NetSMFParams,
    ProNEParams,
    dcsbm_graph,
    lightne_embedding,
    netsmf_embedding,
    prone_embedding,
)
from repro.eval import evaluate_node_classification

RATIO = 0.1
WINDOW = 10


def f1(vectors, labels) -> float:
    score = evaluate_node_classification(vectors, labels, RATIO, repeats=3, seed=1)
    return 100 * score.micro_f1


def main() -> None:
    graph, labels = dcsbm_graph(2_000, 10, avg_degree=14, mixing=0.2,
                                labels_per_node=2, seed=5)
    print(f"graph: {graph}\n")
    print(f"{'config':<18} {'time (s)':>9} {'micro-F1 @10%':>14}")
    print("-" * 45)

    for multiplier in (0.1, 0.5, 1, 2, 5, 10, 20):
        result = lightne_embedding(
            graph,
            LightNEParams(dimension=64, window=WINDOW, sample_multiplier=multiplier),
            seed=0,
        )
        print(f"{'LightNE ' + format(multiplier, 'g') + 'Tm':<18} "
              f"{result.total_seconds:>9.2f} {f1(result.vectors, labels):>14.2f}")

    prone = prone_embedding(graph, ProNEParams(dimension=64), seed=0)
    print(f"{'ProNE+':<18} {prone.total_seconds:>9.2f} "
          f"{f1(prone.vectors, labels):>14.2f}")

    netsmf = netsmf_embedding(
        graph, NetSMFParams(dimension=64, window=WINDOW, sample_multiplier=8), seed=0
    )
    print(f"{'NetSMF 8Tm':<18} {netsmf.total_seconds:>9.2f} "
          f"{f1(netsmf.vectors, labels):>14.2f}")

    print(
        "\nReading the curve: every LightNE point trades time for quality; "
        "the paper's claim is that for any ProNE+/NetSMF point there is a "
        "LightNE point above-and-left of it (Pareto dominance)."
    )


if __name__ == "__main__":
    main()
