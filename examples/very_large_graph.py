#!/usr/bin/env python
"""The very-large-graph recipe (paper §5.3) at laptop scale.

Demonstrates every memory lever the paper pulls for its 100-billion-edge
runs, on a scaled-down crawl:

* Ligra+ parallel-byte **compression** of the input graph (the paper shrinks
  ClueWeb from 564 GB to 107 GB; we print our ratio);
* **degree downsampling** to keep the sparsifier at O(n log n) entries;
* the §5.3 hyper-parameters — T=2, d=32, **no spectral propagation**;
* the Figure-3 effect: HITS@K grows as the sample budget M grows.

Run:  python examples/very_large_graph.py
"""

from __future__ import annotations

from repro import LightNEParams, compress_graph, lightne_embedding, rmat_graph
from repro.eval import evaluate_link_prediction, train_test_split_edges
from repro.systems.memory import hash_table_bytes


def main() -> None:
    graph = rmat_graph(scale=13, edge_factor=10, seed=3)
    print(f"crawl analog: {graph}")

    compressed = compress_graph(graph, block_size=64)
    raw_bytes = graph.offsets.nbytes + graph.targets.nbytes
    print(
        f"compression: {raw_bytes:,} B CSR -> {compressed.size_in_bytes():,} B "
        f"({compressed.size_in_bytes() / raw_bytes:.2f}x)  "
        "(paper: ClueWeb 564 GB -> 107 GB)"
    )

    train, pos_u, pos_v = train_test_split_edges(compressed, 0.002, seed=0)
    print(f"link-prediction split: {pos_u.size} held-out edges\n")

    print(f"{'M':>7} {'samples':>10} {'sparsifier nnz':>15} "
          f"{'table bytes':>12} {'HITS@10':>8} {'HITS@50':>8}")
    for multiplier in (0.25, 1.0, 4.0):
        params = LightNEParams.very_large(dimension=32).with_multiplier(multiplier)
        result = lightne_embedding(train, params, seed=0)
        metrics = evaluate_link_prediction(
            result.vectors, pos_u, pos_v, num_negatives=200, ks=(10, 50), seed=0
        )
        nnz = result.info["sparsifier_nnz"]
        print(
            f"{format(multiplier, 'g') + 'Tm':>7} "
            f"{result.info['num_draws']:>10,} {nnz:>15,} "
            f"{hash_table_bytes(nnz):>12,} "
            f"{metrics.hits[10]:>8.3f} {metrics.hits[50]:>8.3f}"
        )

    print(
        "\nAs in Figure 3: more samples -> higher HITS@K, with memory "
        "growing only via distinct sparsifier entries (hash table), not "
        "via the raw sample count."
    )


if __name__ == "__main__":
    main()
