#!/usr/bin/env python
"""Quickstart: embed a graph with LightNE and inspect the result.

Builds a small community graph, runs the full LightNE pipeline (downsampled
PathSampling sparsifier → randomized SVD → spectral propagation), and prints
the stage timing breakdown plus a quick node-classification score.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import LightNEParams, dcsbm_graph, lightne_embedding
from repro.eval import evaluate_node_classification


def main() -> None:
    # 1. A graph.  Any CSRGraph works — from repro.graph.io.read_edge_list,
    #    from_edges, from_scipy, or a synthetic generator.
    graph, labels = dcsbm_graph(
        n=1_000,
        num_communities=8,
        avg_degree=15,
        mixing=0.15,
        labels_per_node=2,
        seed=7,
    )
    print(f"graph: {graph}")

    # 2. Configure LightNE.  `sample_multiplier` trades time for quality
    #    (paper Figure 2): 0.1 = LightNE-Small, 20 = LightNE-Large.
    params = LightNEParams(
        dimension=64,
        window=10,            # the DeepWalk context window T
        sample_multiplier=5,  # M = 5 * T * m PathSampling draws
    )

    # 3. Embed.
    result = lightne_embedding(graph, params, seed=0)
    print(f"\nembedding: {result.vectors.shape}, method={result.method}")
    print(f"sparsifier: {result.info['sparsifier_nnz']} non-zeros "
          f"from {result.info['num_draws']} samples")
    print("\nstage breakdown (paper Table 5 style):")
    print(result.timer.format())

    # 4. Use it: multi-label node classification at a 10% training ratio.
    score = evaluate_node_classification(
        result.vectors, labels, train_ratio=0.1, repeats=3, seed=1
    )
    print(f"\nnode classification @10% labels: "
          f"micro-F1={100 * score.micro_f1:.1f} "
          f"macro-F1={100 * score.macro_f1:.1f}")


if __name__ == "__main__":
    main()
