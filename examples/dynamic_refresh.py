#!/usr/bin/env python
"""Streaming re-embedding — the paper's §6 future-work direction, prototyped.

The introduction's motivating scenario: Alibaba/LinkedIn-style services must
re-embed graphs "every few hours" as edges arrive.  This example replays a
graph as an edge stream, keeps a :class:`DynamicEmbedder` current under a
staleness policy, and shows (a) embeddings stay useful between refreshes and
(b) the Procrustes alignment keeps the coordinate frame stable (small drift)
so downstream indexes don't need rebuilding from scratch.

Run:  python examples/dynamic_refresh.py
"""

from __future__ import annotations

from repro import LightNEParams, dcsbm_graph
from repro.eval import evaluate_node_classification
from repro.streaming import DynamicEmbedder, RefreshPolicy, edge_stream_from_graph


def main() -> None:
    graph, labels = dcsbm_graph(800, 6, avg_degree=14, mixing=0.15, seed=21)
    print(f"final graph: {graph}")

    # Replay: start with 50% of edges, stream the rest in 8 batches with a
    # little churn (deletions) mixed in.
    initial, batches = edge_stream_from_graph(
        graph, initial_fraction=0.5, batches=8, churn=0.05, seed=0
    )
    print(f"initial graph: {initial}\n")

    embedder = DynamicEmbedder(
        initial,
        LightNEParams(dimension=32, window=5, sample_multiplier=3),
        policy=RefreshPolicy(max_pending_fraction=0.08),
        seed=0,
    )

    def quality() -> float:
        score = evaluate_node_classification(
            embedder.vectors, labels, 0.1, repeats=2, seed=1
        )
        return 100 * score.micro_f1

    print(f"{'batch':>5} {'edges':>7} {'pending':>8} {'refreshed':>9} "
          f"{'drift':>7} {'micro-F1':>9}")
    print(f"{'init':>5} {embedder.graph.num_edges:>7} {0:>8} {'-':>9} "
          f"{'-':>7} {quality():>9.2f}")

    for i, batch in enumerate(batches):
        refreshed = embedder.apply(batch)
        drift = f"{embedder.drift_history[-1]:.3f}" if refreshed else "-"
        print(
            f"{i:>5} {embedder.graph.num_edges:>7} "
            f"{embedder.pending_updates:>8} {str(refreshed):>9} {drift:>7} "
            f"{quality():>9.2f}"
        )

    print(
        f"\n{embedder.refresh_count} refreshes over 8 batches; each refresh "
        "is rotated onto the previous frame (orthogonal Procrustes), keeping "
        "drift well below the ~1.4 of independent random frames so consumers "
        "see a stable embedding space."
    )


if __name__ == "__main__":
    main()
