#!/usr/bin/env python
"""Audit the theory behind LightNE's downsampling (paper §3.2) numerically.

Three checks on a real (small) graph, using `repro.analysis`:

1. **Theorem 3.2 (Lovász)** — the degree bound really brackets the exact
   effective resistance on every edge, and how tight the bracket is depends
   on the spectral gap;
2. **Theorem 3.1 (unbiasedness)** — averaged downsampled graphs converge to
   the original Laplacian (quadratic forms → 1);
3. **ε-sparsification** — the empirical spectral-approximation factor of a
   single downsampled draw vs an average of draws.

Run:  python examples/sparsifier_audit.py
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.analysis import (
    effective_resistances,
    lovasz_resistance_bounds,
    spectral_approximation_factor,
)
from repro.graph.generators import dcsbm_graph
from repro.graph.stats import spectral_gap
from repro.sparsifier.downsampling import (
    downsample_graph_laplacian_sample,
    expected_kept_edges,
)


def sampled_laplacian(graph, rng, repeats):
    n = graph.num_vertices
    acc = sp.csr_matrix((n, n))
    for _ in range(repeats):
        s, d, w = downsample_graph_laplacian_sample(graph, rng)
        rows = np.concatenate([s, d, s, d])
        cols = np.concatenate([d, s, s, d])
        vals = np.concatenate([-w, -w, w, w])
        acc = acc + sp.csr_matrix((vals, (rows, cols)), shape=(n, n))
    return acc / repeats


def main() -> None:
    graph, _ = dcsbm_graph(200, 4, avg_degree=16, mixing=0.25, seed=8)
    gap = spectral_gap(graph)
    print(f"graph: {graph}, spectral gap 1-λ2 = {gap:.3f}")
    print(f"(the paper quotes BlogCatalog's gap ≈ 0.43 to argue degree "
          "sampling suffices)\n")

    # --- Theorem 3.2 -----------------------------------------------------
    src, dst = graph.edge_endpoints()
    mask = src < dst
    src, dst = src[mask][:400], dst[mask][:400]
    exact = effective_resistances(graph, src, dst)
    lower, upper = lovasz_resistance_bounds(graph, src, dst)
    print("Theorem 3.2 check on", src.size, "edges:")
    print(f"  lower bound violated: {(exact < lower - 1e-9).sum()} times")
    print(f"  upper bound violated: {(exact > upper + 1e-9).sum()} times")
    print(f"  median tightness upper/exact: {np.median(upper / exact):.2f}x\n")

    # --- Theorem 3.1 + ε -------------------------------------------------
    rng = np.random.default_rng(0)
    kept = expected_kept_edges(graph)
    print(f"downsampling keeps E[{kept:.0f}] of {graph.num_edges} edges "
          f"({kept / graph.num_edges:.1%})")
    for repeats in (1, 4, 16):
        lap = sampled_laplacian(graph, rng, repeats)
        eps = spectral_approximation_factor(graph, lap, seed=1)
        print(f"  ε-spectral factor of mean of {repeats:>2} draw(s): {eps:.3f}")
    print(
        "\nε shrinking with averaging is Theorem 3.1 in action: each draw is "
        "unbiased, so the mean converges to the exact Laplacian; a single "
        "draw is already a bounded-distortion sparsifier, which is all the "
        "embedding pipeline needs."
    )


if __name__ == "__main__":
    main()
