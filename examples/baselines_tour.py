#!/usr/bin/env python
"""A tour of every embedding method in the library on one labeled graph.

Runs the full NetMF family (exact NetMF, NetMF-large, LINE, NetSMF, ProNE+,
LightNE, GraRep, HOPE, NRP) plus the SGD systems (DeepWalk, node2vec, PBG)
and prints a Figure-4-style comparison: wall-clock, Azure-model cost, and
Micro/Macro F1 at a 10% training ratio.

Run:  python examples/baselines_tour.py
"""

from __future__ import annotations

from repro import (
    DeepWalkSGDParams,
    GraRepParams,
    HOPEParams,
    LightNEParams,
    NRPParams,
    NetSMFParams,
    Node2VecParams,
    PBGParams,
    ProNEParams,
    dcsbm_graph,
    deepwalk_sgd_embedding,
    grarep_embedding,
    hope_embedding,
    lightne_embedding,
    line_embedding,
    netmf_embedding,
    netsmf_embedding,
    node2vec_embedding,
    nrp_embedding,
    pbg_embedding,
    prone_embedding,
)
from repro.eval import evaluate_node_classification
from repro.systems.cost import SYSTEM_INSTANCE, estimate_cost

DIM = 32
WINDOW = 5


def main() -> None:
    graph, labels = dcsbm_graph(
        1_000, 8, avg_degree=14, mixing=0.2, labels_per_node=2, seed=13
    )
    print(f"graph: {graph}, {labels.shape[1]} labels\n")

    methods = [
        ("netmf (exact)", lambda: netmf_embedding(graph, DIM, window=WINDOW, seed=0)),
        ("netmf (eigen)", lambda: netmf_embedding(
            graph, DIM, window=WINDOW, strategy="eigen", eigen_rank=128, seed=0)),
        ("line", lambda: line_embedding(graph, DIM, seed=0)),
        ("netsmf", lambda: netsmf_embedding(
            graph, NetSMFParams(dimension=DIM, window=WINDOW, sample_multiplier=5), 0)),
        ("prone+", lambda: prone_embedding(graph, ProNEParams(dimension=DIM), 0)),
        ("lightne", lambda: lightne_embedding(
            graph, LightNEParams(dimension=DIM, window=WINDOW, sample_multiplier=5), 0)),
        ("grarep", lambda: grarep_embedding(
            graph, GraRepParams(dimension=DIM, steps=4), 0)),
        ("hope", lambda: hope_embedding(graph, HOPEParams(dimension=DIM), 0)),
        ("nrp", lambda: nrp_embedding(graph, NRPParams(dimension=DIM), 0)),
        ("deepwalk-sgd", lambda: deepwalk_sgd_embedding(
            graph, DeepWalkSGDParams(dimension=DIM), 0)),
        ("node2vec", lambda: node2vec_embedding(
            graph, Node2VecParams(dimension=DIM, return_p=0.5, in_out_q=2.0), 0)),
        ("pbg", lambda: pbg_embedding(graph, PBGParams(dimension=DIM, epochs=20), 0)),
    ]

    print(f"{'method':<15} {'time (s)':>9} {'cost ($)':>10} "
          f"{'micro-F1':>9} {'macro-F1':>9}")
    print("-" * 56)
    for name, run in methods:
        result = run()
        score = evaluate_node_classification(
            result.vectors, labels, 0.1, repeats=3, seed=1
        )
        system_key = result.method if result.method in SYSTEM_INSTANCE else "lightne"
        cost = estimate_cost(system_key, result.total_seconds)
        print(
            f"{name:<15} {result.total_seconds:>9.2f} {cost:>10.6f} "
            f"{100 * score.micro_f1:>9.2f} {100 * score.macro_f1:>9.2f}"
        )

    print(
        "\nThe paper's story in one table: the matrix-factorization family "
        "(and LightNE in particular) reaches the best quality orders of "
        "magnitude faster than SGD training."
    )


if __name__ == "__main__":
    main()
