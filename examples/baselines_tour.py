#!/usr/bin/env python
"""A tour of every embedding method in the library on one labeled graph.

Runs the full NetMF family (exact NetMF, NetMF-large, LINE, NetSMF, ProNE+,
LightNE, GraRep, HOPE, NRP) plus the SGD systems (DeepWalk, node2vec, PBG)
and prints a Figure-4-style comparison: wall-clock, Azure-model cost, and
Micro/Macro F1 at a 10% training ratio.

Every method is dispatched through the declarative registry
(`repro.embedding.registry`): the method list below is `list_methods()`
itself, per-method overrides are plain dicts validated by `make_params`,
and adding a method to the registry adds it to this tour automatically.

Run:  python examples/baselines_tour.py
"""

from __future__ import annotations

from repro import dcsbm_graph
from repro.embedding.registry import list_methods, run_method
from repro.eval import evaluate_node_classification
from repro.systems.cost import estimate_cost

DIM = 32
WINDOW = 5

# Per-method overrides on top of {"dimension": DIM}; everything else keeps
# the registry defaults.  Keys are canonical registry names.
OVERRIDES = {
    "netmf": {"window": WINDOW},
    "netmf-eigen": {"window": WINDOW, "eigen_rank": 128},
    "netsmf": {"window": WINDOW, "multiplier": 5},
    "lightne": {"window": WINDOW, "multiplier": 5},
    "grarep": {"steps": 4},
    "node2vec": {"return_p": 0.5, "in_out_q": 2.0},
}


def main() -> None:
    graph, labels = dcsbm_graph(
        1_000, 8, avg_degree=14, mixing=0.2, labels_per_node=2, seed=13
    )
    print(f"graph: {graph}, {labels.shape[1]} labels\n")

    print(f"{'method':<15} {'time (s)':>9} {'cost ($)':>10} "
          f"{'micro-F1':>9} {'macro-F1':>9}")
    print("-" * 56)
    for spec in list_methods():
        overrides = {"dimension": DIM, **OVERRIDES.get(spec.name, {})}
        result = run_method(spec.name, graph, seed=0, **overrides)
        score = evaluate_node_classification(
            result.vectors, labels, 0.1, repeats=3, seed=1
        )
        cost = estimate_cost(result.method, result.total_seconds)
        print(
            f"{spec.name:<15} {result.total_seconds:>9.2f} {cost:>10.6f} "
            f"{100 * score.micro_f1:>9.2f} {100 * score.macro_f1:>9.2f}"
        )

    print(
        "\nThe paper's story in one table: the matrix-factorization family "
        "(and LightNE in particular) reaches the best quality orders of "
        "magnitude faster than SGD training."
    )


if __name__ == "__main__":
    main()
