#!/usr/bin/env python
"""Link prediction on a web-crawl-style graph (the paper's §5.2.1/§5.3 task).

Follows the PyTorch-BigGraph protocol the paper uses: hold out a slice of
edges, embed the remaining graph, rank each held-out edge against corrupted
negatives, and report MR / MRR / HITS@K.  Compares LightNE to the PBG-style
SGD baseline on both quality and the Azure-pricing cost model (Table 2).

Run:  python examples/link_prediction.py
"""

from __future__ import annotations

from repro import (
    LightNEParams,
    PBGParams,
    lightne_embedding,
    pbg_embedding,
    rmat_graph,
)
from repro.eval import evaluate_link_prediction, train_test_split_edges
from repro.systems import estimate_cost


def main() -> None:
    # A skewed web-crawl-like graph (R-MAT, Graph500 parameters).
    graph = rmat_graph(scale=12, edge_factor=8, seed=11)
    print(f"graph: {graph}")

    # PBG's evaluation setup: exclude a small fraction of edges for testing.
    train, pos_u, pos_v = train_test_split_edges(graph, 0.01, seed=0)
    print(f"held out {pos_u.size} edges for evaluation")

    for name, run in [
        ("pbg", lambda: pbg_embedding(train, PBGParams(dimension=32, epochs=10), 0)),
        (
            "lightne",
            lambda: lightne_embedding(
                train,
                # The paper skips propagation and sets T=2, d=32 on crawls.
                LightNEParams(dimension=32, window=2, sample_multiplier=4,
                              propagate=False),
                0,
            ),
        ),
    ]:
        result = run()
        metrics = evaluate_link_prediction(
            result.vectors, pos_u, pos_v, num_negatives=100, ks=(1, 10, 50), seed=0
        )
        cost = estimate_cost(name, result.total_seconds)
        print(
            f"\n{name:8s} time={result.total_seconds:6.2f}s  "
            f"cost=${cost:.6f} (Azure model)"
        )
        print(f"{'':8s} MR={metrics.mean_rank:.2f}  MRR={metrics.mrr:.3f}  "
              f"HITS@10={metrics.hits[10]:.3f}  HITS@50={metrics.hits[50]:.3f}")


if __name__ == "__main__":
    main()
