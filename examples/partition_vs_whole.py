#!/usr/bin/env python
"""Partition-then-embed vs whole-graph embedding (the paper's opening shot).

The introduction motivates LightNE with the industry workaround it removes:
Alibaba partitions a 600B-node graph into 12,000 subgraphs and embeds each
separately, because no single-machine system could handle the whole graph.
The price is every cross-partition edge.  This example quantifies that
price: the same LightNE embedder run (a) on the whole graph and (b) per
part after BFS partitioning into 2/4/8 parts, scoring node classification
and the edge cut.

Run:  python examples/partition_vs_whole.py
"""

from __future__ import annotations

from repro import LightNEParams, dcsbm_graph, lightne_embedding
from repro.eval import evaluate_node_classification
from repro.graph.partition import bfs_partition, embed_partitioned


def embedder(subgraph, seed):
    dim = min(32, subgraph.num_vertices)
    return lightne_embedding(
        subgraph,
        LightNEParams(dimension=dim, window=5, sample_multiplier=3),
        seed,
    )


def f1(vectors, labels) -> float:
    score = evaluate_node_classification(vectors, labels, 0.1, repeats=3, seed=1)
    return 100 * score.micro_f1


def main() -> None:
    graph, labels = dcsbm_graph(
        1_200, 10, avg_degree=14, mixing=0.25, labels_per_node=2, seed=31
    )
    print(f"graph: {graph}\n")

    whole = embedder(graph, 0)
    print(f"{'setup':<14} {'edge cut':>9} {'micro-F1 @10%':>14}")
    print("-" * 40)
    print(f"{'whole graph':<14} {'0.0%':>9} {f1(whole.vectors, labels):>14.2f}")

    for parts in (2, 4, 8):
        assignment = bfs_partition(graph, parts, seed=0)
        result = embed_partitioned(
            graph, assignment, embedder, dimension=32, seed=0
        )
        cut = result.info["edge_cut"]
        print(
            f"{f'{parts} parts':<14} {cut:>8.1%} "
            f"{f1(result.vectors, labels):>14.2f}"
        )

    print(
        "\nEvery severed edge is structure the per-part embedders never see; "
        "quality decays as the cut grows. LightNE's pitch is handling the "
        "whole graph on one machine so the partition (and its cut) is "
        "unnecessary."
    )


if __name__ == "__main__":
    main()
